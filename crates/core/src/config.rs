//! Warehouse configuration.

use crate::retry::RetryPolicy;
use amada_cloud::{
    BillingGranularity, FaultConfig, InstanceType, KvBackend, KvTuning, PriceTable, SimDuration,
    WorkModel,
};
use amada_index::{ExtractOptions, MixedPlan, Strategy};

/// S3 bucket holding the XML documents.
pub const DOC_BUCKET: &str = "amada-documents";
/// S3 bucket holding materialized query results.
pub const RESULT_BUCKET: &str = "amada-results";
/// Queue carrying document-loading requests (architecture step 3).
pub const LOADER_QUEUE: &str = "amada-loader-requests";
/// Queue carrying query requests (step 8).
pub const QUERY_QUEUE: &str = "amada-query-requests";
/// Queue carrying query responses (step 15).
pub const RESPONSE_QUEUE: &str = "amada-query-responses";
/// Queue receiving messages that exceeded `RetryPolicy::max_receives`
/// deliveries without being completed (poison messages / repeated
/// abandonment) instead of recirculating forever.
pub const DEAD_LETTER_QUEUE: &str = "amada-dead-letter";

/// An instance pool: how many virtual machines of which flavor run a
/// module.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    /// Number of instances.
    pub count: usize,
    /// Instance flavor.
    pub itype: InstanceType,
}

impl Pool {
    /// A pool of `count` instances of `itype`.
    pub fn new(count: usize, itype: InstanceType) -> Pool {
        Pool { count, itype }
    }
}

/// Queue-depth autoscaling policy for one instance pool (the loader or
/// query-processor module). `None` in the config keeps today's static
/// pools bit-identically; `Some(policy)` puts an
/// [`crate::autoscale::AutoscaleController`] in charge of the pool:
/// every `sample_interval` it issues a *billed* SQS depth probe and
/// resizes the pool toward `ceil(depth / backlog_per_instance)`, clamped
/// to `min..=max`. Scale-out launches instances whose billing starts at
/// the decision instant but whose cores only begin work `boot_latency`
/// later (you pay for the boot, as on real EC2); scale-in drains the
/// newest instances gracefully — they finish the messages they hold a
/// lease on, then [`amada_cloud::Ec2::stop`] freezes their billing
/// window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoscalePolicy {
    /// Pool floor (≥ 1): instances provisioned up-front and never drained.
    pub min: usize,
    /// Pool ceiling.
    pub max: usize,
    /// Time between queue-depth samples (each sample is a billed SQS
    /// request).
    pub sample_interval: SimDuration,
    /// Backlog one instance is expected to absorb; the controller targets
    /// `ceil(depth / backlog_per_instance)` instances.
    pub backlog_per_instance: usize,
    /// Modeled instance boot latency: a scaled-out instance is billed
    /// from the scaling decision but its cores start polling only after
    /// this delay.
    pub boot_latency: SimDuration,
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        AutoscalePolicy {
            min: 1,
            max: 8,
            sample_interval: SimDuration::from_secs(5),
            backlog_per_instance: 4,
            boot_latency: SimDuration::from_secs(30),
        }
    }
}

impl AutoscalePolicy {
    /// Pool size the policy wants for a sampled queue depth.
    pub fn desired(&self, depth: usize) -> usize {
        depth
            .div_ceil(self.backlog_per_instance.max(1))
            .clamp(self.min, self.max)
    }

    /// Panics on a nonsensical policy (zero floor or inverted bounds).
    pub fn validate(&self) {
        assert!(self.min >= 1, "autoscale floor must keep one instance");
        assert!(self.min <= self.max, "autoscale min must not exceed max");
        assert!(
            self.sample_interval > SimDuration::ZERO,
            "autoscale sample interval must advance time"
        );
    }
}

/// Host-side execution knobs. Everything here shapes only the *wall
/// clock* of the simulation host; no field can change virtual times,
/// costs, or any emitted number (asserted by the
/// `prewarm_identity` tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostConfig {
    /// Parse and extract all stored documents across all host cores
    /// before the discrete-event engine runs, so loader and query steps
    /// become cache hits. Thread count comes from `AMADA_THREADS` or the
    /// machine's available parallelism.
    pub prewarm: bool,
    /// Record every service call, throttle and actor phase as a virtual-
    /// time span (`amada_cloud::obs`). Off by default; recording only
    /// *observes* — virtual times, bills and results stay bit-identical
    /// (asserted by the observability identity test), which is why this
    /// knob lives in `HostConfig`.
    pub record: bool,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            prewarm: true,
            record: false,
        }
    }
}

/// Full warehouse configuration.
#[derive(Debug, Clone)]
pub struct WarehouseConfig {
    /// Indexing strategy (paper Table 2).
    pub strategy: Strategy,
    /// Extraction options (full-text on/off).
    pub extract: ExtractOptions,
    /// Index-store backend (DynamoDB, or SimpleDB for the \[8\] baseline).
    pub backend: KvBackend,
    /// Ablation switches on the index store (binary values, batching).
    pub kv_tuning: KvTuning,
    /// Instances running the indexing module (paper: 8 large).
    pub loader_pool: Pool,
    /// Instances running the query processor (paper: 1 unless stated).
    pub query_pool: Pool,
    /// Queue-depth autoscaling for the loader pool; `None` (the default)
    /// keeps the static pool, bit-identically.
    pub loader_autoscale: Option<AutoscalePolicy>,
    /// Queue-depth autoscaling for the query-processor pool.
    pub query_autoscale: Option<AutoscalePolicy>,
    /// EC2 billing granularity: fractional hours (the paper's formulas,
    /// default) or per started hour (real 2012 EC2 invoicing).
    pub ec2_billing: BillingGranularity,
    /// Provider price table (paper Table 3 by default).
    pub prices: PriceTable,
    /// Compute work model.
    pub work: WorkModel,
    /// SQS visibility timeout for task leases. A module core renews its
    /// lease at the half-life while it works (the paper's Section 3
    /// crash-detection contract: a crashed core stops renewing, and the
    /// message is redelivered). Long by default so a healthy task
    /// finishes within half the window and issues no renewals — billing
    /// then counts exactly the receive + delete per message the paper's
    /// cost formulas assume.
    pub visibility: SimDuration,
    /// How often an idle module core polls an empty queue.
    pub poll_interval: SimDuration,
    /// Seeded transient-fault injection for the simulated services.
    /// Off by default; the identity tests pin that a default `faults`
    /// leaves every virtual time and cost bit-identical to a world with
    /// no fault subsystem at all.
    pub faults: FaultConfig,
    /// How modules and the front end retry throttled requests.
    pub retry: RetryPolicy,
    /// Host-side (wall-clock only) execution knobs.
    pub host: HostConfig,
    /// Shard plan for the index store: `None` (the default) keeps the
    /// single table-level queue, bit-identically to the unsharded build.
    /// A sharded plan changes service times and throttle exposure only —
    /// never answers or billed units.
    pub shard_plan: Option<amada_cloud::ShardPlan>,
    /// Per-partition strategy routing: `None` (the default) indexes the
    /// whole corpus with `strategy`, bit-identically to the paper's
    /// layout. `Some(plan)` routes each document by its URI's partition —
    /// hot partitions can take the ID-granularity index while cold ones
    /// take a cheap one or none at all — and
    /// [`crate::Warehouse::apply_plan`] migrates between plans
    /// incrementally.
    pub mixed_plan: Option<MixedPlan>,
}

impl Default for WarehouseConfig {
    fn default() -> Self {
        WarehouseConfig {
            strategy: Strategy::Lu,
            extract: ExtractOptions::default(),
            backend: KvBackend::default(),
            kv_tuning: KvTuning::NONE,
            loader_pool: Pool::new(8, InstanceType::Large),
            query_pool: Pool::new(1, InstanceType::Large),
            loader_autoscale: None,
            query_autoscale: None,
            ec2_billing: BillingGranularity::Fractional,
            prices: PriceTable::default(),
            work: WorkModel::default(),
            visibility: SimDuration::from_secs(4 * 3600),
            poll_interval: SimDuration::from_millis(100),
            faults: FaultConfig::default(),
            retry: RetryPolicy::default(),
            host: HostConfig::default(),
            shard_plan: None,
            mixed_plan: None,
        }
    }
}

impl WarehouseConfig {
    /// Convenience: the default configuration with a given strategy.
    pub fn with_strategy(strategy: Strategy) -> WarehouseConfig {
        WarehouseConfig {
            strategy,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = WarehouseConfig::default();
        assert_eq!(c.loader_pool.count, 8);
        assert_eq!(c.loader_pool.itype, InstanceType::Large);
        assert_eq!(c.query_pool.count, 1);
        // Elasticity and started-hour billing are opt-in: the defaults
        // must reproduce the paper's static-pool, fractional-hour setup.
        assert!(c.loader_autoscale.is_none());
        assert!(c.query_autoscale.is_none());
        assert!(c.mixed_plan.is_none(), "mixed routing is opt-in");
        assert_eq!(c.ec2_billing, BillingGranularity::Fractional);
    }

    #[test]
    fn autoscale_policy_targets_backlog_per_instance() {
        let p = AutoscalePolicy {
            min: 1,
            max: 8,
            backlog_per_instance: 4,
            ..Default::default()
        };
        p.validate();
        assert_eq!(p.desired(0), 1, "empty queue holds the floor");
        assert_eq!(p.desired(4), 1);
        assert_eq!(p.desired(5), 2, "round up: 5 messages need 2 instances");
        assert_eq!(p.desired(32), 8);
        assert_eq!(p.desired(10_000), 8, "ceiling clamps");
    }

    #[test]
    #[should_panic(expected = "floor")]
    fn zero_floor_policy_is_rejected() {
        AutoscalePolicy {
            min: 0,
            ..Default::default()
        }
        .validate();
    }
}
