//! Report types produced by the warehouse — the raw material of every
//! table and figure in the paper's evaluation section.

use crate::autoscale::ScaleEvent;
use amada_cloud::{CostReport, InstanceType, SimDuration, StorageCost};
use amada_index::Strategy;
use amada_pattern::JoinedTuple;

/// Outcome of building the index over the uploaded corpus (Tables 4 and 6,
/// Figures 7 and 8).
#[derive(Debug, Clone)]
pub struct IndexBuildReport {
    /// Strategy used.
    pub strategy: Strategy,
    /// Loader pool size and flavor.
    pub instances: usize,
    /// Loader instance flavor.
    pub itype: InstanceType,
    /// Documents indexed.
    pub documents: u64,
    /// Corpus size in bytes.
    pub corpus_bytes: u64,
    /// Index entries extracted.
    pub entries: u64,
    /// Store items written.
    pub items: u64,
    /// Raw entry bytes (`sr(D, I)`).
    pub entry_bytes: u64,
    /// Average per-core time spent extracting entries (Table 4 column
    /// "average extraction time").
    pub avg_extraction_time: SimDuration,
    /// Average per-core time spent waiting on index-store writes
    /// (Table 4 column "average uploading time").
    pub avg_upload_time: SimDuration,
    /// Stale index items deleted by update retraction during this build
    /// (zero for a churn-free corpus).
    pub retracted_items: u64,
    /// Wall-clock time of the whole indexing phase (Table 4 "total").
    pub total_time: SimDuration,
    /// Charges for the phase, decomposed by service (Table 6).
    pub cost: CostReport,
    /// Raw index bytes stored (`sr(D, I)`), from the store's accounting.
    pub index_raw_bytes: u64,
    /// Store overhead bytes (`ovh(D, I)`).
    pub index_overhead_bytes: u64,
    /// Monthly storage charges after the build (Figure 8).
    pub storage: StorageCost,
    /// Billed requests the services throttled during the build (each was
    /// retried; zero in a fault-free run).
    pub throttled_requests: u64,
    /// Visibility-lease renewals issued by the loader cores.
    pub lease_renewals: u64,
    /// Task messages redelivered after a lease expired (crashed or
    /// abandoning consumer).
    pub redelivered: u64,
    /// Autoscaler decisions during the build (empty for a static pool).
    pub scale_events: Vec<ScaleEvent>,
}

/// Timing decomposition of one query execution (Figures 9b / 9c): the
/// three phases the paper charts per query and strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryPhases {
    /// "Lookup – DynamoDB Get": issuing index gets and waiting for them.
    pub lookup_get: SimDuration,
    /// "Lookup – Plan execution": intersections, path filtering, ID joins.
    pub plan: SimDuration,
    /// "S3 documents transfer and results extraction": fetching candidate
    /// documents and evaluating the query on them (divided across the
    /// instance's cores).
    pub transfer_eval: SimDuration,
}

/// Outcome of one query execution (Table 5, Figures 9–13).
#[derive(Debug, Clone)]
pub struct QueryExecution {
    /// Query name (e.g. `q4`).
    pub name: String,
    /// Whether an index was used (`None` = the no-index baseline).
    pub strategy: Option<Strategy>,
    /// Response time perceived at the query processor: message retrieved →
    /// message deleted (the paper's measurement convention, Section 7.1).
    pub response_time: SimDuration,
    /// Phase decomposition.
    pub phases: QueryPhases,
    /// Document IDs returned by index look-up, summed over tree patterns
    /// (Table 5 "# Doc. IDs from index").
    pub docs_from_index: usize,
    /// Distinct documents actually fetched from the file store.
    pub docs_fetched: usize,
    /// Documents that contain query results (Table 5 "# Docs. w. results").
    pub docs_with_results: usize,
    /// Materialized result tuples.
    pub results: Vec<JoinedTuple>,
    /// Result size in bytes (`|r(q)|`).
    pub result_bytes: u64,
    /// Billed index get operations (`|op(q, D, I)|`).
    pub index_get_ops: u64,
}

impl QueryExecution {
    /// Number of result tuples.
    pub fn result_count(&self) -> usize {
        self.results.len()
    }
}

/// A query execution together with its isolated cost delta (Figures 11–12).
#[derive(Debug, Clone)]
pub struct CostedQuery {
    /// The execution.
    pub exec: QueryExecution,
    /// Charges attributable to this query, by service.
    pub cost: CostReport,
}

/// Outcome of a (possibly repeated) workload run (Figure 10).
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Per-query executions, in completion order.
    pub executions: Vec<QueryExecution>,
    /// Wall-clock time of the whole run.
    pub total_time: SimDuration,
    /// Charges for the run.
    pub cost: CostReport,
    /// Billed requests the services throttled during the run.
    pub throttled_requests: u64,
    /// Visibility-lease renewals issued by the query processors.
    pub lease_renewals: u64,
    /// Query messages redelivered after a lease expired.
    pub redelivered: u64,
    /// Autoscaler decisions during the run (empty for a static pool).
    pub scale_events: Vec<ScaleEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_phases_default_to_zero() {
        let p = QueryPhases::default();
        assert_eq!(p.lookup_get, SimDuration::ZERO);
        assert_eq!(p.plan, SimDuration::ZERO);
    }
}
