//! Virtual-instance registry and billing (Amazon EC2 in the paper).
//!
//! Instances are launched with a type ([`crate::pricing::InstanceType`]),
//! run one warehouse module across their cores, and are billed for the
//! virtual wall-clock window they were up — `VM$_h × t`, fractional hours,
//! exactly as the paper's cost formulas use instance time (Section 7.3).

use crate::clock::{SimDuration, SimTime};
use crate::money::Money;
use crate::pricing::{InstanceType, PriceTable};

/// Handle to a launched instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstanceId(pub usize);

/// Lifetime record of one instance.
#[derive(Debug, Clone, Copy)]
pub struct InstanceRecord {
    /// Instance flavor.
    pub itype: InstanceType,
    /// Launch time.
    pub start: SimTime,
    /// Last activity / shutdown time (extended as work completes).
    pub end: SimTime,
}

impl InstanceRecord {
    /// Billed uptime.
    pub fn uptime(&self) -> SimDuration {
        self.end - self.start
    }
}

/// The instance registry.
#[derive(Debug, Default)]
pub struct Ec2 {
    records: Vec<InstanceRecord>,
}

impl Ec2 {
    /// Creates an empty registry.
    pub fn new() -> Ec2 {
        Ec2::default()
    }

    /// Launches an instance at `now`.
    pub fn launch(&mut self, itype: InstanceType, now: SimTime) -> InstanceId {
        self.records.push(InstanceRecord {
            itype,
            start: now,
            end: now,
        });
        InstanceId(self.records.len() - 1)
    }

    /// Extends an instance's busy window to cover `now` (called by actors
    /// as their operations complete; the final call fixes shutdown time).
    pub fn extend(&mut self, id: InstanceId, now: SimTime) {
        let r = &mut self.records[id.0];
        r.end = r.end.max(now);
    }

    /// The record of an instance.
    pub fn record(&self, id: InstanceId) -> InstanceRecord {
        self.records[id.0]
    }

    /// All records.
    pub fn records(&self) -> &[InstanceRecord] {
        &self.records
    }

    /// Total EC2 charge under a price table (fractional-hour billing, as
    /// in the paper's `VM$_h × t` terms).
    pub fn total_cost(&self, prices: &PriceTable) -> Money {
        self.records
            .iter()
            .map(|r| prices.vm_hour(r.itype).per_hour(r.uptime().micros()))
            .sum()
    }

    /// Total instance-hours (for reports).
    pub fn total_hours(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.uptime().as_secs_f64() / 3600.0)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn billing_is_fractional_hours() {
        let mut ec2 = Ec2::new();
        let prices = PriceTable::default();
        let id = ec2.launch(InstanceType::Large, SimTime::ZERO);
        ec2.extend(id, SimTime::ZERO + SimDuration::from_secs(1800));
        // Half an hour of a $0.34/h instance: exactly $0.17, compared in
        // picodollars so rounding regressions can't hide in f64.
        assert_eq!(ec2.total_cost(&prices).pico(), 170_000_000_000);
        assert!((ec2.total_hours() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn extend_never_shrinks() {
        let mut ec2 = Ec2::new();
        let id = ec2.launch(InstanceType::ExtraLarge, SimTime::ZERO);
        ec2.extend(id, SimTime(5_000_000));
        ec2.extend(id, SimTime(2_000_000));
        assert_eq!(ec2.record(id).end, SimTime(5_000_000));
    }

    #[test]
    fn xl_bills_double() {
        let prices = PriceTable::default();
        let mut a = Ec2::new();
        let i = a.launch(InstanceType::Large, SimTime::ZERO);
        a.extend(i, SimTime(3_600_000_000));
        let mut b = Ec2::new();
        let j = b.launch(InstanceType::ExtraLarge, SimTime::ZERO);
        b.extend(j, SimTime(3_600_000_000));
        assert_eq!(
            b.total_cost(&prices).pico(),
            2 * a.total_cost(&prices).pico()
        );
    }
}
