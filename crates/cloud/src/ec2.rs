//! Virtual-instance registry and billing (Amazon EC2 in the paper).
//!
//! Instances are launched with a type ([`crate::pricing::InstanceType`]),
//! run one warehouse module across their cores, and are billed for the
//! virtual wall-clock window they were up — `VM$_h × t`, fractional hours,
//! exactly as the paper's cost formulas use instance time (Section 7.3).
//! A [`BillingGranularity`] knob switches to the per-*started*-hour
//! billing real 2012 EC2 applied (every started hour charged in full);
//! the default stays fractional so the reproduced tables are unchanged.
//!
//! [`Ec2::stop`] freezes an instance's billing window: an autoscaler
//! draining a scale-in victim stops it the moment its last core exits,
//! and later `extend` calls (including the warehouse's blanket phase-end
//! extension of its pools) no longer grow the window.

use crate::clock::{SimDuration, SimTime};
use crate::money::Money;
use crate::pricing::{InstanceType, PriceTable};

/// Handle to a launched instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstanceId(pub usize);

/// Lifetime record of one instance.
#[derive(Debug, Clone, Copy)]
pub struct InstanceRecord {
    /// Instance flavor.
    pub itype: InstanceType,
    /// Launch time.
    pub start: SimTime,
    /// Last activity / shutdown time (extended as work completes).
    pub end: SimTime,
}

impl InstanceRecord {
    /// Billed uptime.
    pub fn uptime(&self) -> SimDuration {
        self.end - self.start
    }
}

/// How instance uptime converts into dollars.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BillingGranularity {
    /// `VM$_h × t` with fractional hours — the paper's cost formulas
    /// (Section 7.3) and the default.
    #[default]
    Fractional,
    /// Every *started* instance-hour billed in full (`ceil(t / 1h)`, at
    /// least one hour per launched instance) — how 2012 EC2 actually
    /// invoiced.
    PerStartedHour,
}

const HOUR_MICROS: u64 = 3_600_000_000;

/// The instance registry.
#[derive(Debug, Default)]
pub struct Ec2 {
    records: Vec<InstanceRecord>,
    /// Parallel to `records`: instances whose billing window is frozen.
    stopped: Vec<bool>,
    granularity: BillingGranularity,
}

impl Ec2 {
    /// Creates an empty registry (fractional-hour billing).
    pub fn new() -> Ec2 {
        Ec2::default()
    }

    /// Switches the billing granularity (applies to every record,
    /// retroactively — granularity is a property of the price sheet, not
    /// of an individual launch).
    pub fn set_granularity(&mut self, granularity: BillingGranularity) {
        self.granularity = granularity;
    }

    /// The billing granularity in force.
    pub fn granularity(&self) -> BillingGranularity {
        self.granularity
    }

    /// Launches an instance at `now`.
    pub fn launch(&mut self, itype: InstanceType, now: SimTime) -> InstanceId {
        self.records.push(InstanceRecord {
            itype,
            start: now,
            end: now,
        });
        self.stopped.push(false);
        InstanceId(self.records.len() - 1)
    }

    /// Extends an instance's busy window to cover `now` (called by actors
    /// as their operations complete; the final call fixes shutdown time).
    /// A stopped instance's window is frozen: extending it is a no-op.
    pub fn extend(&mut self, id: InstanceId, now: SimTime) {
        if self.stopped[id.0] {
            return;
        }
        let r = &mut self.records[id.0];
        r.end = r.end.max(now);
    }

    /// Stops an instance at `now`: the billing window is extended to
    /// cover `now` one last time and then frozen — subsequent `extend`
    /// calls (e.g. the warehouse's phase-end pool extension) are no-ops.
    /// Idempotent; a second stop cannot grow the window.
    pub fn stop(&mut self, id: InstanceId, now: SimTime) {
        if self.stopped[id.0] {
            return;
        }
        let r = &mut self.records[id.0];
        r.end = r.end.max(now);
        self.stopped[id.0] = true;
    }

    /// True when the instance's billing window was frozen by
    /// [`Ec2::stop`].
    pub fn is_stopped(&self, id: InstanceId) -> bool {
        self.stopped[id.0]
    }

    /// The record of an instance.
    pub fn record(&self, id: InstanceId) -> InstanceRecord {
        self.records[id.0]
    }

    /// All records.
    pub fn records(&self) -> &[InstanceRecord] {
        &self.records
    }

    /// What one record costs under `prices` and the current granularity.
    pub fn record_cost(&self, r: &InstanceRecord, prices: &PriceTable) -> Money {
        let rate = prices.vm_hour(r.itype);
        match self.granularity {
            BillingGranularity::Fractional => rate.per_hour(r.uptime().micros()),
            BillingGranularity::PerStartedHour => {
                let hours = r.uptime().micros().div_ceil(HOUR_MICROS).max(1);
                rate * hours
            }
        }
    }

    /// Total EC2 charge under a price table (fractional-hour billing by
    /// default, as in the paper's `VM$_h × t` terms).
    pub fn total_cost(&self, prices: &PriceTable) -> Money {
        self.records
            .iter()
            .map(|r| self.record_cost(r, prices))
            .sum()
    }

    /// Total instance-hours (for reports).
    pub fn total_hours(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.uptime().as_secs_f64() / 3600.0)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amada_rng::StdRng;

    #[test]
    fn billing_is_fractional_hours() {
        let mut ec2 = Ec2::new();
        let prices = PriceTable::default();
        let id = ec2.launch(InstanceType::Large, SimTime::ZERO);
        ec2.extend(id, SimTime::ZERO + SimDuration::from_secs(1800));
        // Half an hour of a $0.34/h instance: exactly $0.17, compared in
        // picodollars so rounding regressions can't hide in f64.
        assert_eq!(ec2.total_cost(&prices).pico(), 170_000_000_000);
        assert!((ec2.total_hours() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn extend_never_shrinks() {
        let mut ec2 = Ec2::new();
        let id = ec2.launch(InstanceType::ExtraLarge, SimTime::ZERO);
        ec2.extend(id, SimTime(5_000_000));
        ec2.extend(id, SimTime(2_000_000));
        assert_eq!(ec2.record(id).end, SimTime(5_000_000));
    }

    #[test]
    fn xl_bills_double() {
        let prices = PriceTable::default();
        let mut a = Ec2::new();
        let i = a.launch(InstanceType::Large, SimTime::ZERO);
        a.extend(i, SimTime(3_600_000_000));
        let mut b = Ec2::new();
        let j = b.launch(InstanceType::ExtraLarge, SimTime::ZERO);
        b.extend(j, SimTime(3_600_000_000));
        assert_eq!(
            b.total_cost(&prices).pico(),
            2 * a.total_cost(&prices).pico()
        );
    }

    #[test]
    fn stop_freezes_the_billing_window() {
        let mut ec2 = Ec2::new();
        let prices = PriceTable::default();
        let id = ec2.launch(InstanceType::Large, SimTime::ZERO);
        ec2.extend(id, SimTime(1_000_000));
        ec2.stop(id, SimTime(1_800_000_000)); // 30 virtual minutes
        assert!(ec2.is_stopped(id));
        // Extending a stopped instance is a no-op (the warehouse's
        // phase-end pool extension must not resurrect it).
        ec2.extend(id, SimTime(7_200_000_000));
        assert_eq!(ec2.record(id).end, SimTime(1_800_000_000));
        // A second stop cannot grow the window either.
        ec2.stop(id, SimTime(7_200_000_000));
        assert_eq!(ec2.record(id).end, SimTime(1_800_000_000));
        assert_eq!(ec2.total_cost(&prices).pico(), 170_000_000_000);
    }

    #[test]
    fn started_hour_billing_rounds_up_per_record() {
        let mut ec2 = Ec2::new();
        let prices = PriceTable::default();
        ec2.set_granularity(BillingGranularity::PerStartedHour);
        // 61 minutes → 2 started hours of a $0.34/h instance.
        let a = ec2.launch(InstanceType::Large, SimTime::ZERO);
        ec2.extend(a, SimTime::ZERO + SimDuration::from_secs(61 * 60));
        // Launched and immediately stopped → still 1 started hour.
        let _b = ec2.launch(InstanceType::Large, SimTime(5));
        assert_eq!(
            ec2.total_cost(&prices).pico(),
            3 * 340_000_000_000,
            "2 started hours + 1 minimum hour at $0.34 each"
        );
        // An exact hour stays one hour, not two.
        let c = ec2.launch(InstanceType::Large, SimTime::ZERO);
        ec2.extend(c, SimTime(HOUR_MICROS));
        assert_eq!(
            ec2.record_cost(&ec2.record(c), &prices).pico(),
            340_000_000_000
        );
    }

    /// Property (issue's satellite): for any schedule of launches and
    /// extensions, `fractional ≤ started-hour ≤ fractional + 1h × N`.
    #[test]
    fn started_hour_brackets_fractional_billing() {
        let prices = PriceTable::default();
        let mut rng = StdRng::seed_from_u64(0xB111_1146);
        for _ in 0..200 {
            let mut ec2 = Ec2::new();
            let n = rng.gen_range(1..=6) as usize;
            for _ in 0..n {
                let itype = if rng.gen_range(0..2) == 0 {
                    InstanceType::Large
                } else {
                    InstanceType::ExtraLarge
                };
                let start = SimTime(rng.gen_range(0u64..7_200_000_000));
                let id = ec2.launch(itype, start);
                for _ in 0..rng.gen_range(0..4) {
                    let run = SimDuration::from_micros(rng.gen_range(0u64..36_000_000_000));
                    ec2.extend(id, start + run);
                }
            }
            let fractional = ec2.total_cost(&prices);
            ec2.set_granularity(BillingGranularity::PerStartedHour);
            let started = ec2.total_cost(&prices);
            let hour_each: Money = ec2.records().iter().map(|r| prices.vm_hour(r.itype)).sum();
            assert!(fractional <= started, "{fractional} > {started}");
            assert!(
                started <= fractional + hour_each,
                "{started} > {fractional} + {hour_each}"
            );
        }
    }
}
