//! Hash-partitioned shard routing for the key-value index store.
//!
//! Real DynamoDB splits a table into partitions, each with its own slice
//! of the provisioned throughput; a hot hash key saturates *its*
//! partition long before the table's aggregate capacity is reached. The
//! [`ShardPlan`] models that: every table is split into N independently
//! provisioned shards, items are routed by hash key, and a *skew-aware*
//! plan (built by `amada-index`) can pin known-hot hash keys (e.g.
//! high-frequency element labels) to dedicated shards while the cold
//! tail is hash-partitioned across the rest.
//!
//! Routing is a pure function of the hash key and the plan — no host
//! state, no randomness — so the same plan gives the same assignment on
//! every run and every thread count. Sharding changes only *where* a
//! request queues (service times, throttle exposure); what is billed is
//! decided per item / per key exactly as in the unsharded store, so a
//! faults-off run bills byte-identical capacity with any plan.

use std::collections::BTreeMap;

/// How a table's hash-key space is partitioned into provisioned shards.
///
/// Shard ids `0..cold_shards` are the hash-partitioned cold tail; ids
/// `cold_shards..shards()` are dedicated hot-key shards, one per pinned
/// key. The default ([`ShardPlan::single`]) is one shard and no hot keys
/// — the unsharded table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    cold_shards: usize,
    hot: BTreeMap<String, usize>,
}

impl Default for ShardPlan {
    fn default() -> Self {
        ShardPlan::single()
    }
}

/// FNV-1a, 64-bit: stable across platforms and runs, cheap per key.
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ShardPlan {
    /// The unsharded table: one shard, no hot keys.
    pub fn single() -> ShardPlan {
        ShardPlan::hashed(1)
    }

    /// `cold_shards` hash-partitioned shards, no hot keys.
    ///
    /// # Panics
    /// Panics when `cold_shards` is zero.
    pub fn hashed(cold_shards: usize) -> ShardPlan {
        assert!(cold_shards >= 1, "a plan needs at least one shard");
        ShardPlan {
            cold_shards,
            hot: BTreeMap::new(),
        }
    }

    /// `cold_shards` hash-partitioned shards plus one dedicated shard per
    /// hot key, assigned in iteration order (duplicates are ignored).
    pub fn with_hot_keys<I, S>(cold_shards: usize, hot_keys: I) -> ShardPlan
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut plan = ShardPlan::hashed(cold_shards);
        for key in hot_keys {
            let key = key.into();
            let next = plan.cold_shards + plan.hot.len();
            plan.hot.entry(key).or_insert(next);
        }
        plan
    }

    /// Total shard count (cold + dedicated hot shards).
    pub fn shards(&self) -> usize {
        self.cold_shards + self.hot.len()
    }

    /// Cold (hash-partitioned) shard count.
    pub fn cold_shards(&self) -> usize {
        self.cold_shards
    }

    /// The pinned hot keys with their dedicated shard ids, in key order.
    pub fn hot_keys(&self) -> impl Iterator<Item = (&str, usize)> {
        self.hot.iter().map(|(k, &s)| (k.as_str(), s))
    }

    /// True when routing can actually separate traffic (more than one
    /// shard). A single-shard plan is the unsharded store.
    pub fn is_sharded(&self) -> bool {
        self.shards() > 1
    }

    /// The shard serving `hash_key`: its dedicated shard when pinned hot,
    /// otherwise FNV-1a over the cold shards. Pure and deterministic.
    pub fn route(&self, hash_key: &str) -> usize {
        match self.hot.get(hash_key) {
            Some(&shard) => shard,
            None => (fnv1a(hash_key) % self.cold_shards as u64) as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_plan_routes_everything_to_shard_zero() {
        let p = ShardPlan::single();
        assert_eq!(p.shards(), 1);
        assert!(!p.is_sharded());
        for key in ["", "ename", "w‖cloud", "a‖id 42"] {
            assert_eq!(p.route(key), 0);
        }
    }

    #[test]
    fn hot_keys_get_dedicated_shards_after_the_cold_range() {
        let p = ShardPlan::with_hot_keys(2, ["ename", "person"]);
        assert_eq!(p.shards(), 4);
        assert!(p.is_sharded());
        let hot: Vec<usize> = [p.route("ename"), p.route("person")].into();
        assert!(hot.iter().all(|&s| s >= 2), "hot shards sit after cold");
        assert_ne!(hot[0], hot[1], "each hot key owns its shard");
        // Cold keys stay in the cold range.
        for key in ["aid", "w‖auction", "zzz"] {
            assert!(p.route(key) < 2, "{key} must hash into a cold shard");
        }
    }

    #[test]
    fn duplicate_hot_keys_are_ignored() {
        let p = ShardPlan::with_hot_keys(1, ["k", "k", "j"]);
        assert_eq!(p.shards(), 3);
        assert_eq!(p.route("k"), 1);
        assert_eq!(p.route("j"), 2);
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let p = ShardPlan::with_hot_keys(4, ["hot"]);
        for key in ["a", "b", "c", "hot", "ename", ""] {
            let first = p.route(key);
            assert!(first < p.shards());
            for _ in 0..10 {
                assert_eq!(p.route(key), first);
            }
        }
        // A clone routes identically (the plan is pure data).
        let q = p.clone();
        for key in ["a", "hot", "w‖x"] {
            assert_eq!(p.route(key), q.route(key));
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        ShardPlan::hashed(0);
    }
}
