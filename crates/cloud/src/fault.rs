//! Deterministic transient-fault injection for the simulated services.
//!
//! Real cloud services fail transiently all the time: DynamoDB returns
//! `ProvisionedThroughputExceededException`, S3 returns `503 SlowDown`,
//! SQS throttles bursts. The paper's architecture (Section 3) and cost
//! model (Section 7) both assume clients retry — and that every attempt,
//! failed or not, is a billed request. This module makes those failures
//! representable without giving up the simulation's bit-reproducibility:
//! each service draws from its own seeded [`amada_rng::StdRng`] stream, so
//! a `(seed, rates)` pair maps to exactly one fault schedule, on any host,
//! at any thread count (the engine is single-threaded; service calls
//! happen in one deterministic order).
//!
//! The faults-off contract is strict: a [`FaultInjector`] with rate zero
//! never draws from its generator, so a world configured with
//! [`FaultConfig::default()`] is *bit-identical* to one predating fault
//! injection — no extra RNG state, requests, or virtual time anywhere.

use amada_rng::StdRng;

/// Per-service transient-fault rates, plus the master seed deriving every
/// service's fault stream. `Default` is all-off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Master seed; each service derives its own independent stream.
    pub seed: u64,
    /// Probability that an S3 put/get is throttled (503 SlowDown).
    pub s3_rate: f64,
    /// Probability that an index-store operation is throttled
    /// (ProvisionedThroughputExceeded).
    pub kv_rate: f64,
    /// Probability that an SQS send/receive/delete/renew is throttled.
    pub sqs_rate: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0xFA17,
            s3_rate: 0.0,
            kv_rate: 0.0,
            sqs_rate: 0.0,
        }
    }
}

/// Stream-derivation tags, one per service, so the services' fault
/// streams are mutually independent even under one master seed.
const S3_TAG: u64 = 0x5353_3300;
const KV_TAG: u64 = 0x4B56_5300;
const SQS_TAG: u64 = 0x5351_5300;

impl FaultConfig {
    /// The same fault rate on every service.
    pub fn uniform(seed: u64, rate: f64) -> FaultConfig {
        FaultConfig {
            seed,
            s3_rate: rate,
            kv_rate: rate,
            sqs_rate: rate,
        }
    }

    /// True when any service can fail.
    pub fn is_active(&self) -> bool {
        self.s3_rate > 0.0 || self.kv_rate > 0.0 || self.sqs_rate > 0.0
    }

    /// The injector for the file store.
    pub fn s3_injector(&self) -> FaultInjector {
        FaultInjector::new(self.s3_rate, self.seed ^ S3_TAG)
    }

    /// The injector for the index store.
    pub fn kv_injector(&self) -> FaultInjector {
        FaultInjector::new(self.kv_rate, self.seed ^ KV_TAG)
    }

    /// The injector for the queue service.
    pub fn sqs_injector(&self) -> FaultInjector {
        FaultInjector::new(self.sqs_rate, self.seed ^ SQS_TAG)
    }
}

/// A per-service Bernoulli fault source.
///
/// Rates are clamped to `[0, 0.95]`: retry loops terminate almost surely
/// only when success has positive probability, and no realistic chaos
/// experiment throttles more than 95% of requests.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rate: f64,
    rng: StdRng,
}

impl FaultInjector {
    /// An injector throttling each request with probability `rate`.
    pub fn new(rate: f64, seed: u64) -> FaultInjector {
        FaultInjector {
            rate: rate.clamp(0.0, 0.95),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// An injector that never fires (the default service state).
    pub fn off() -> FaultInjector {
        FaultInjector::new(0.0, 0)
    }

    /// True when this injector can ever fire.
    pub fn is_active(&self) -> bool {
        self.rate > 0.0
    }

    /// Decides whether the next request is throttled. An inactive
    /// injector returns `false` *without drawing*, so faults-off runs
    /// consume no randomness and stay bit-identical to a world that has
    /// no injector at all.
    pub fn roll(&mut self) -> bool {
        self.rate > 0.0 && self.rng.gen_bool(self.rate)
    }
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_injector_never_fires_and_never_draws() {
        let mut a = FaultInjector::off();
        for _ in 0..100 {
            assert!(!a.roll());
        }
        // Same internal stream as a fresh injector: no draws happened.
        let mut b = FaultInjector::new(1.0, 0);
        let mut c = FaultInjector::new(1.0, 0);
        a.rate = 0.95;
        a.rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(a.roll(), b.roll());
            let _ = c.roll();
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultInjector::new(0.3, 42);
        let mut b = FaultInjector::new(0.3, 42);
        let sa: Vec<bool> = (0..200).map(|_| a.roll()).collect();
        let sb: Vec<bool> = (0..200).map(|_| b.roll()).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().any(|&f| f), "a 30% rate fires within 200 rolls");
        assert!(!sa.iter().all(|&f| f), "and does not always fire");
    }

    #[test]
    fn services_get_independent_streams() {
        let cfg = FaultConfig::uniform(7, 0.5);
        let mut s3 = cfg.s3_injector();
        let mut kv = cfg.kv_injector();
        let a: Vec<bool> = (0..64).map(|_| s3.roll()).collect();
        let b: Vec<bool> = (0..64).map(|_| kv.roll()).collect();
        assert_ne!(a, b, "per-service streams must differ");
    }

    #[test]
    fn default_config_is_off() {
        let cfg = FaultConfig::default();
        assert!(!cfg.is_active());
        assert!(!cfg.s3_injector().is_active());
        assert!(FaultConfig::uniform(1, 0.1).is_active());
    }

    #[test]
    fn rates_are_clamped() {
        let mut always = FaultInjector::new(5.0, 1);
        // Clamped to 0.95, so "always" still occasionally succeeds.
        let rolls: Vec<bool> = (0..500).map(|_| always.roll()).collect();
        assert!(rolls.iter().any(|&f| !f));
        let mut never = FaultInjector::new(-1.0, 1);
        assert!(!never.roll());
    }
}
