//! Ablation adapters for the key-value store.
//!
//! The paper attributes much of its improvement over \[8\] to two concrete
//! engineering choices (Sections 8.1 / 8.4):
//!
//! * storing ID sets as **binary** values ("DynamoDB allows storing
//!   arbitrary binary objects as values, a feature we exploited in order
//!   to efficiently encode our index data");
//! * **batching** writes ("we batched the documents in order to minimize
//!   the number of calls needed to load the index into DynamoDB").
//!
//! These adapters switch either choice off *without* changing the store
//! itself, by narrowing the advertised [`KvProfile`]; the index layer
//! encodes against the profile, so entries transparently fall back to
//! base64-chunked strings / single-item writes. The ablation experiment
//! measures what each choice is worth.

use crate::clock::SimTime;
use crate::kv::{KvError, KvItem, KvProfile, KvStats, KvStore};

/// Which capabilities to withhold from the wrapped store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvTuning {
    /// Pretend binary values are unsupported (forces the base64 string
    /// encoding of ID lists even on DynamoDB).
    pub force_string_values: bool,
    /// Advertise a batch size of 1 (every item becomes its own API call).
    pub disable_batching: bool,
}

impl KvTuning {
    /// No capability withheld.
    pub const NONE: KvTuning = KvTuning {
        force_string_values: false,
        disable_batching: false,
    };

    /// True when any capability is withheld.
    pub fn is_active(&self) -> bool {
        self.force_string_values || self.disable_batching
    }
}

/// A [`KvStore`] wrapper that narrows the advertised profile per a
/// [`KvTuning`].
pub struct TunedKvStore {
    inner: Box<dyn KvStore>,
    tuning: KvTuning,
}

impl TunedKvStore {
    /// Wraps `inner`; a no-op tuning is allowed (and free).
    pub fn new(inner: Box<dyn KvStore>, tuning: KvTuning) -> TunedKvStore {
        TunedKvStore { inner, tuning }
    }
}

impl KvStore for TunedKvStore {
    fn profile(&self) -> KvProfile {
        let mut p = self.inner.profile();
        if self.tuning.force_string_values {
            p.supports_binary = false;
            // String payloads must respect a per-value cap for chunking;
            // reuse the SimpleDB-era 1 KB granularity.
            p.max_value_bytes = p.max_value_bytes.min(1024);
        }
        if self.tuning.disable_batching {
            p.batch_put_limit = 1;
        }
        p
    }

    fn ensure_table(&mut self, table: &str) {
        self.inner.ensure_table(table);
    }

    fn batch_put(
        &mut self,
        now: SimTime,
        table: &str,
        items: Vec<KvItem>,
    ) -> Result<SimTime, KvError> {
        if self.tuning.disable_batching && items.len() > 1 {
            return Err(KvError::BatchTooLarge {
                limit: 1,
                got: items.len(),
            });
        }
        if self.tuning.force_string_values {
            let profile = self.profile();
            for item in &items {
                for (_, vs) in &item.attrs {
                    for v in vs {
                        if v.is_binary() {
                            return Err(KvError::BinaryNotSupported);
                        }
                        if v.len() > profile.max_value_bytes {
                            return Err(KvError::ValueTooLarge {
                                limit: profile.max_value_bytes,
                                got: v.len(),
                            });
                        }
                    }
                }
            }
        }
        self.inner.batch_put(now, table, items)
    }

    fn batch_delete(
        &mut self,
        now: SimTime,
        table: &str,
        keys: &[(String, String)],
    ) -> Result<SimTime, KvError> {
        if self.tuning.disable_batching && keys.len() > 1 {
            return Err(KvError::BatchTooLarge {
                limit: 1,
                got: keys.len(),
            });
        }
        self.inner.batch_delete(now, table, keys)
    }

    fn get(
        &mut self,
        now: SimTime,
        table: &str,
        hash_key: &str,
    ) -> Result<(Vec<KvItem>, SimTime), KvError> {
        self.inner.get(now, table, hash_key)
    }

    fn batch_get(
        &mut self,
        now: SimTime,
        table: &str,
        hash_keys: &[String],
    ) -> Result<(Vec<KvItem>, SimTime), KvError> {
        self.inner.batch_get(now, table, hash_keys)
    }

    fn stats(&self) -> KvStats {
        self.inner.stats()
    }

    fn set_faults(&mut self, faults: crate::fault::FaultInjector) {
        self.inner.set_faults(faults);
    }

    fn set_recorder(&mut self, recorder: crate::obs::Recorder) {
        self.inner.set_recorder(recorder);
    }

    fn faults_active(&self) -> bool {
        self.inner.faults_active()
    }

    fn set_shard_plan(&mut self, plan: crate::shard::ShardPlan) {
        self.inner.set_shard_plan(plan);
    }

    fn peek_all(&self) -> Vec<(String, KvItem)> {
        self.inner.peek_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamodb::DynamoDb;
    use crate::kv::KvValue;

    fn item(i: usize) -> KvItem {
        KvItem {
            hash_key: "k".into(),
            range_key: format!("r{i}"),
            attrs: vec![("d".into(), vec![KvValue::S(String::new())])],
        }
    }

    #[test]
    fn string_tuning_narrows_profile_only() {
        let t = TunedKvStore::new(
            Box::new(DynamoDb::default()),
            KvTuning {
                force_string_values: true,
                disable_batching: false,
            },
        );
        let p = t.profile();
        assert!(!p.supports_binary);
        assert_eq!(p.max_value_bytes, 1024);
        assert_eq!(p.batch_put_limit, 25);
    }

    #[test]
    fn unbatched_tuning_enforces_single_item_puts() {
        let mut t = TunedKvStore::new(
            Box::new(DynamoDb::default()),
            KvTuning {
                force_string_values: false,
                disable_batching: true,
            },
        );
        t.ensure_table("t");
        assert_eq!(t.profile().batch_put_limit, 1);
        assert!(matches!(
            t.batch_put(SimTime::ZERO, "t", vec![item(0), item(1)]),
            Err(KvError::BatchTooLarge { limit: 1, .. })
        ));
        t.batch_put(SimTime::ZERO, "t", vec![item(0)]).unwrap();
        let (items, _) = t.get(SimTime::ZERO, "t", "k").unwrap();
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn string_tuning_enforces_the_narrowed_profile() {
        let mut t = TunedKvStore::new(
            Box::new(DynamoDb::default()),
            KvTuning {
                force_string_values: true,
                disable_batching: false,
            },
        );
        t.ensure_table("t");
        let bin = KvItem {
            hash_key: "k".into(),
            range_key: "r".into(),
            attrs: vec![("d".into(), vec![KvValue::B(vec![1])])],
        };
        assert!(matches!(
            t.batch_put(SimTime::ZERO, "t", vec![bin]),
            Err(KvError::BinaryNotSupported)
        ));
        let long = KvItem {
            hash_key: "k".into(),
            range_key: "r".into(),
            attrs: vec![("d".into(), vec![KvValue::S("x".repeat(2000))])],
        };
        assert!(matches!(
            t.batch_put(SimTime::ZERO, "t", vec![long]),
            Err(KvError::ValueTooLarge { .. })
        ));
    }

    #[test]
    fn unbatched_tuning_limits_deletes_too() {
        let mut t = TunedKvStore::new(
            Box::new(DynamoDb::default()),
            KvTuning {
                force_string_values: false,
                disable_batching: true,
            },
        );
        t.ensure_table("t");
        t.batch_put(SimTime::ZERO, "t", vec![item(0)]).unwrap();
        t.batch_put(SimTime::ZERO, "t", vec![item(1)]).unwrap();
        assert!(matches!(
            t.batch_delete(
                SimTime::ZERO,
                "t",
                &[("k".into(), "r0".into()), ("k".into(), "r1".into())]
            ),
            Err(KvError::BatchTooLarge { limit: 1, .. })
        ));
        t.batch_delete(SimTime::ZERO, "t", &[("k".into(), "r0".into())])
            .unwrap();
        let (items, _) = t.get(SimTime::ZERO, "t", "k").unwrap();
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn noop_tuning_is_transparent() {
        let mut t = TunedKvStore::new(Box::new(DynamoDb::default()), KvTuning::NONE);
        t.ensure_table("t");
        t.batch_put(SimTime::ZERO, "t", vec![item(0), item(1)])
            .unwrap();
        assert_eq!(t.stats().api_requests, 1);
        assert!(t.profile().supports_binary);
    }
}
