//! The discrete-event engine and the simulated cloud [`World`].
//!
//! Actors (one per virtual instance core, plus the front end) execute
//! sequential, blocking programs against the world's services. Each
//! [`Actor::step`] call performs the actor's next operation — a service
//! call or a block of virtual compute — and returns the virtual time at
//! which the actor is ready for its next step. The engine wakes actors in
//! global time order, so service queueing and contention are consistent
//! across all actors.
//!
//! One deliberate relaxation: state mutation happens when an operation
//! *starts*, while its completion time is modelled by the service; an
//! actor observing the store between those instants could see the write
//! "early". The warehouse's phases never race on the same keys (loading
//! and querying are separate phases, and index items are written under
//! fresh UUID range keys), so this cannot change results — only simplify
//! the engine.

use crate::clock::SimTime;
use crate::dynamodb::{DynamoConfig, DynamoDb};
use crate::ec2::Ec2;
use crate::fault::FaultConfig;
use crate::kv::{KvStats, KvStore};
use crate::money::Money;
use crate::obs::{Recorder, ServiceKind, Span};
use crate::pricing::PriceTable;
use crate::s3::{S3Stats, S3};
use crate::simpledb::{SimpleDb, SimpleDbConfig};
use crate::sqs::{Sqs, SqsStats};
use crate::workmodel::WorkModel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which key-value backend hosts the index store.
#[derive(Debug, Clone)]
pub enum KvBackend {
    /// DynamoDB (this paper's system).
    Dynamo(DynamoConfig),
    /// SimpleDB (the baseline of \[8\], Tables 7–8).
    Simple(SimpleDbConfig),
}

impl Default for KvBackend {
    fn default() -> Self {
        KvBackend::Dynamo(DynamoConfig::default())
    }
}

/// The simulated cloud: every service plus pricing and the work model.
pub struct World {
    /// File store.
    pub s3: S3,
    /// Index store (DynamoDB or SimpleDB).
    pub kv: Box<dyn KvStore>,
    /// Queue service.
    pub sqs: Sqs,
    /// Instance registry.
    pub ec2: Ec2,
    /// Compute work model.
    pub work: WorkModel,
    /// Provider price table.
    pub prices: PriceTable,
    /// Bytes transferred out of the cloud (billed `egress$_GB`).
    pub egress_bytes: u64,
    /// Span recorder (off unless [`World::enable_recording`] was called);
    /// the services hold clones sharing the same buffer.
    pub obs: Recorder,
    /// Actors queued by [`World::spawn_actor`] from inside a step; the
    /// engine adopts them before the next wake-up.
    pending_spawns: Vec<(SimTime, Box<dyn Actor>)>,
}

impl World {
    /// Creates a world with the given index backend and default pricing
    /// (the paper's Table 3).
    pub fn new(backend: KvBackend) -> World {
        let kv: Box<dyn KvStore> = match backend {
            KvBackend::Dynamo(cfg) => Box::new(DynamoDb::new(cfg)),
            KvBackend::Simple(cfg) => Box::new(SimpleDb::new(cfg)),
        };
        World {
            s3: S3::new(),
            kv,
            sqs: Sqs::new(),
            ec2: Ec2::new(),
            work: WorkModel::default(),
            prices: PriceTable::default(),
            egress_bytes: 0,
            obs: Recorder::off(),
            pending_spawns: Vec::new(),
        }
    }

    /// Queues an actor for the engine to adopt, first woken at `at`.
    ///
    /// Actors only see `&mut World` during a step, not the engine, so this
    /// is how one actor launches another mid-run (an autoscaler booting a
    /// new instance's cores). The engine drains the queue in FIFO order
    /// after every step, so spawn order is deterministic.
    pub fn spawn_actor(&mut self, at: SimTime, actor: Box<dyn Actor>) {
        self.pending_spawns.push((at, actor));
    }

    /// Turns on span recording: every subsequent service call, throttle
    /// and actor phase is recorded against the current price table. Must
    /// be called after `prices` is set — the recorder bills spans under a
    /// snapshot of the table taken here.
    pub fn enable_recording(&mut self) {
        let rec = Recorder::enabled(self.prices.clone());
        self.s3.set_recorder(rec.clone());
        self.kv.set_recorder(rec.clone());
        self.sqs.set_recorder(rec.clone());
        self.obs = rec;
    }

    /// Records `bytes` leaving the cloud at `now` (query results returned
    /// to the user — the paper's `egress$_GB × |r(q)|` term).
    pub fn egress(&mut self, now: SimTime, bytes: u64) {
        self.egress_bytes += bytes;
        self.obs.record(|p, ctx| {
            Span::new(ServiceKind::Egress, "egress", now, now, ctx)
                .bytes(bytes)
                .billed(p.egress_gb.per_gb(bytes))
        });
    }

    /// Installs the per-service fault injectors derived from `cfg`. With
    /// the default (all-off) config this leaves the world bit-identical to
    /// one that never heard of fault injection: inactive injectors draw no
    /// randomness and fail no requests.
    pub fn install_faults(&mut self, cfg: &FaultConfig) {
        self.s3.set_faults(cfg.s3_injector());
        self.kv.set_faults(cfg.kv_injector());
        self.sqs.set_faults(cfg.sqs_injector());
    }

    /// Captures the current billing counters (for per-phase cost deltas).
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            s3: self.s3.stats(),
            kv: self.kv.stats(),
            sqs: self.sqs.stats(),
            egress_bytes: self.egress_bytes,
            ec2_cost: self.ec2.total_cost(&self.prices),
        }
    }

    /// Charges accumulated since `since` (an empty snapshot charges
    /// everything since world creation).
    pub fn cost_since(&self, since: &CostSnapshot) -> CostReport {
        let s3 = self.s3.stats();
        let kv = self.kv.stats();
        let sqs = self.sqs.stats();
        let p = &self.prices;
        let s3_cost = p.st_put * (s3.put_requests - since.s3.put_requests)
            + p.st_get * (s3.get_requests - since.s3.get_requests)
            + p.st_get * (s3.scan_requests - since.s3.scan_requests)
            + p.st_scan_gb
                .per_gb(s3.bytes_scanned - since.s3.bytes_scanned);
        let kv_cost = p.idx_put * (kv.put_ops - since.kv.put_ops)
            + p.idx_get * (kv.get_ops - since.kv.get_ops);
        let sqs_cost = p.qs_request * (sqs.requests - since.sqs.requests);
        let egress_cost = p.egress_gb.per_gb(self.egress_bytes - since.egress_bytes)
            + p.egress_gb
                .per_gb(s3.scan_returned_bytes - since.s3.scan_returned_bytes);
        let ec2_cost = self.ec2.total_cost(p) - since.ec2_cost;
        CostReport {
            s3: s3_cost,
            kv: kv_cost,
            ec2: ec2_cost,
            sqs: sqs_cost,
            egress: egress_cost,
        }
    }

    /// Total charges since world creation.
    pub fn cost_report(&self) -> CostReport {
        self.cost_since(&CostSnapshot::default())
    }

    /// Monthly storage charge for the current contents: the paper's
    /// `st$_m(D, I) = ST$_{m,GB} × s(D) + IDX$_{m,GB} × s(D, I)`.
    pub fn storage_cost_per_month(&self) -> StorageCost {
        StorageCost {
            file_store: self.prices.st_month_gb.per_gb(self.s3.stats().stored_bytes),
            index_store: self
                .prices
                .idx_month_gb
                .per_gb(self.kv.stats().stored_bytes()),
        }
    }
}

/// A point-in-time capture of billing counters.
#[derive(Debug, Clone, Default)]
pub struct CostSnapshot {
    /// File-store counters.
    pub s3: S3Stats,
    /// Index-store counters.
    pub kv: KvStats,
    /// Queue counters.
    pub sqs: SqsStats,
    /// Egress bytes so far.
    pub egress_bytes: u64,
    /// EC2 charges so far.
    pub ec2_cost: Money,
}

/// Charges decomposed by service — the decomposition of the paper's
/// Figure 12 (DynamoDB / S3 / EC2 / SQS / AWSDown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostReport {
    /// File-store request charges.
    pub s3: Money,
    /// Index-store operation charges.
    pub kv: Money,
    /// Virtual-instance charges.
    pub ec2: Money,
    /// Queue-service charges.
    pub sqs: Money,
    /// Out-of-cloud transfer charges ("AWSDown").
    pub egress: Money,
}

impl CostReport {
    /// Sum of all components.
    pub fn total(&self) -> Money {
        self.s3 + self.kv + self.ec2 + self.sqs + self.egress
    }
}

impl std::fmt::Display for CostReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (index store {}, file store {}, instances {}, queues {}, egress {})",
            self.total(),
            self.kv,
            self.s3,
            self.ec2,
            self.sqs,
            self.egress
        )
    }
}

/// Monthly storage charges (paper Section 7.3, `st$_m`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageCost {
    /// `ST$_{m,GB} × s(D)`.
    pub file_store: Money,
    /// `IDX$_{m,GB} × s(D, I)`.
    pub index_store: Money,
}

impl StorageCost {
    /// Total monthly storage charge.
    pub fn total(&self) -> Money {
        self.file_store + self.index_store
    }
}

impl std::fmt::Display for StorageCost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/month (files {}, index {})",
            self.total(),
            self.file_store,
            self.index_store
        )
    }
}

/// What an actor does when woken.
pub enum StepResult {
    /// The actor's current operation completes at this time; wake it then.
    NextAt(SimTime),
    /// The actor has finished; remove it.
    Done,
}

/// A sequential program running in the simulation (one instance core, or
/// the front end).
pub trait Actor {
    /// Performs the actor's next operation against the world at virtual
    /// time `now`.
    fn step(&mut self, now: SimTime, world: &mut World) -> StepResult;
}

/// The discrete-event engine.
pub struct Engine {
    /// The simulated cloud.
    pub world: World,
    heap: BinaryHeap<Reverse<(u64, u64, usize)>>,
    actors: Vec<Option<Box<dyn Actor>>>,
    seq: u64,
    now: SimTime,
}

impl Engine {
    /// Creates an engine over a world.
    pub fn new(world: World) -> Engine {
        Engine {
            world,
            heap: BinaryHeap::new(),
            actors: Vec::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Adds an actor, first woken at `at`.
    pub fn spawn(&mut self, actor: Box<dyn Actor>, at: SimTime) {
        let idx = self.actors.len();
        self.actors.push(Some(actor));
        self.heap.push(Reverse((at.micros(), self.seq, idx)));
        self.seq += 1;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Adopts actors queued on the world by [`World::spawn_actor`]
    /// (in FIFO order, for determinism).
    fn adopt_pending(&mut self) {
        if self.world.pending_spawns.is_empty() {
            return;
        }
        for (at, actor) in std::mem::take(&mut self.world.pending_spawns) {
            debug_assert!(at >= self.now, "spawns cannot travel back in time");
            self.spawn(actor, at);
        }
    }

    /// Runs until no actor has a pending wake-up; returns the final
    /// virtual time.
    pub fn run(&mut self) -> SimTime {
        self.adopt_pending();
        while let Some(Reverse((t, _, idx))) = self.heap.pop() {
            self.now = SimTime(t);
            let Some(actor) = self.actors[idx].as_mut() else {
                continue;
            };
            match actor.step(self.now, &mut self.world) {
                StepResult::NextAt(next) => {
                    debug_assert!(next >= self.now, "actors cannot travel back in time");
                    self.heap.push(Reverse((next.micros(), self.seq, idx)));
                    self.seq += 1;
                }
                StepResult::Done => {
                    self.actors[idx] = None;
                }
            }
            self.adopt_pending();
        }
        self.now
    }

    /// Consumes the engine, returning the world (for post-run reporting).
    pub fn into_world(self) -> World {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimDuration;

    /// An actor that performs `n` compute steps of 1 s each.
    struct Ticker {
        remaining: u32,
        log: std::rc::Rc<std::cell::RefCell<Vec<(u64, &'static str)>>>,
        name: &'static str,
    }

    impl Actor for Ticker {
        fn step(&mut self, now: SimTime, _world: &mut World) -> StepResult {
            self.log.borrow_mut().push((now.micros(), self.name));
            if self.remaining == 0 {
                return StepResult::Done;
            }
            self.remaining -= 1;
            StepResult::NextAt(now + SimDuration::from_secs(1))
        }
    }

    #[test]
    fn actors_interleave_in_time_order() {
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut eng = Engine::new(World::new(KvBackend::default()));
        eng.spawn(
            Box::new(Ticker {
                remaining: 2,
                log: log.clone(),
                name: "a",
            }),
            SimTime::ZERO,
        );
        eng.spawn(
            Box::new(Ticker {
                remaining: 1,
                log: log.clone(),
                name: "b",
            }),
            SimTime(500_000),
        );
        let end = eng.run();
        assert_eq!(end.micros(), 2_000_000);
        let events = log.borrow().clone();
        assert_eq!(
            events,
            vec![
                (0, "a"),
                (500_000, "b"),
                (1_000_000, "a"),
                (1_500_000, "b"),
                (2_000_000, "a"),
            ]
        );
    }

    /// An actor that spawns a [`Ticker`] mid-run through the world.
    struct Spawner {
        at: SimTime,
        log: std::rc::Rc<std::cell::RefCell<Vec<(u64, &'static str)>>>,
    }

    impl Actor for Spawner {
        fn step(&mut self, _now: SimTime, world: &mut World) -> StepResult {
            world.spawn_actor(
                self.at,
                Box::new(Ticker {
                    remaining: 1,
                    log: self.log.clone(),
                    name: "spawned",
                }),
            );
            StepResult::Done
        }
    }

    #[test]
    fn actors_can_spawn_actors_mid_run() {
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut eng = Engine::new(World::new(KvBackend::default()));
        eng.spawn(
            Box::new(Spawner {
                at: SimTime(2_500_000),
                log: log.clone(),
            }),
            SimTime(1_000_000),
        );
        eng.spawn(
            Box::new(Ticker {
                remaining: 3,
                log: log.clone(),
                name: "a",
            }),
            SimTime::ZERO,
        );
        let end = eng.run();
        assert_eq!(end.micros(), 3_500_000);
        let events = log.borrow().clone();
        assert_eq!(
            events,
            vec![
                (0, "a"),
                (1_000_000, "a"),
                (2_000_000, "a"),
                (2_500_000, "spawned"),
                (3_000_000, "a"),
                (3_500_000, "spawned"),
            ]
        );
    }

    #[test]
    fn cost_report_reflects_service_usage() {
        let mut world = World::new(KvBackend::default());
        world.s3.create_bucket("b");
        world
            .s3
            .put(SimTime::ZERO, "b", "k", vec![0; 1000])
            .unwrap();
        world.sqs.create_queue("q");
        world.sqs.send(SimTime::ZERO, "q", "m").unwrap();
        world.egress(SimTime::ZERO, 1_000_000_000);
        let report = world.cost_report();
        assert_eq!(report.s3, world.prices.st_put);
        assert_eq!(report.sqs, world.prices.qs_request);
        assert_eq!(report.egress, world.prices.egress_gb);
        assert_eq!(report.kv, Money::ZERO);
        assert_eq!(report.total(), report.s3 + report.sqs + report.egress);
    }

    #[test]
    fn snapshots_isolate_phases() {
        let mut world = World::new(KvBackend::default());
        world.s3.create_bucket("b");
        world.s3.put(SimTime::ZERO, "b", "k", vec![0; 10]).unwrap();
        let snap = world.snapshot();
        world.s3.put(SimTime::ZERO, "b", "k2", vec![0; 10]).unwrap();
        world.s3.put(SimTime::ZERO, "b", "k3", vec![0; 10]).unwrap();
        let delta = world.cost_since(&snap);
        assert_eq!(delta.s3, world.prices.st_put * 2);
    }

    /// Satellite property: every byte-moving S3 op prices exactly from
    /// its counters — the ledger's byte-based charges equal the
    /// `per_gb`-priced counters to round-half-up pico precision, under
    /// any interleaving of puts, gets, scans, egress and throttles.
    #[test]
    fn ledger_transfer_charges_equal_per_gb_priced_counters_exactly() {
        struct TakeHalf;
        impl crate::s3::ObjectPredicate for TakeHalf {
            fn filter(&self, bytes: &[u8]) -> Vec<u8> {
                bytes[..bytes.len() / 2].to_vec()
            }
        }
        let mut world = World::new(KvBackend::default());
        world.s3.create_bucket("b");
        // A seeded xorshift drives the op mix; the property must hold for
        // any interleaving.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0u64..200 {
            let key = format!("k{}", rand() % 17);
            let size = (rand() % 50_000) as usize + 1;
            match rand() % 4 {
                0 => drop(world.s3.put(SimTime(round), "b", &key, vec![0; size])),
                1 => drop(world.s3.get(SimTime(round), "b", &key)),
                2 => drop(world.s3.scan(SimTime(round), "b", &key, &TakeHalf)),
                _ => world.egress(SimTime(round), rand() % 100_000),
            }
            if round == 100 {
                world.install_faults(&FaultConfig {
                    seed: 7,
                    s3_rate: 0.3,
                    ..FaultConfig::default()
                });
            }
        }
        let st = world.s3.stats();
        assert!(st.scan_requests > 0 && st.get_requests > 0 && st.throttled > 0);
        let p = world.prices.clone();
        let report = world.cost_report();
        assert_eq!(
            report.s3.pico(),
            (p.st_put * st.put_requests
                + p.st_get * (st.get_requests + st.scan_requests)
                + p.st_scan_gb.per_gb(st.bytes_scanned))
            .pico()
        );
        assert_eq!(
            report.egress.pico(),
            (p.egress_gb.per_gb(world.egress_bytes) + p.egress_gb.per_gb(st.scan_returned_bytes))
                .pico()
        );
        // In a scan-only world every byte that left the store was scan
        // output, so the egress side of the bill prices `bytes_out`
        // itself, exactly.
        let mut scans = World::new(KvBackend::default());
        scans.s3.create_bucket("b");
        for i in 0u64..40 {
            let key = format!("k{i}");
            scans
                .s3
                .put(
                    SimTime(i),
                    "b",
                    &key,
                    vec![0; 1 + (i as usize * 7919) % 9999],
                )
                .unwrap();
        }
        let before = scans.snapshot();
        for i in 0u64..40 {
            scans
                .s3
                .scan(SimTime(100 + i), "b", &format!("k{i}"), &TakeHalf)
                .unwrap();
        }
        let st = scans.s3.stats();
        let delta_out = st.bytes_out - before.s3.bytes_out;
        assert_eq!(delta_out, st.scan_returned_bytes);
        assert_eq!(
            scans.cost_since(&before).egress.pico(),
            p.egress_gb.per_gb(delta_out).pico()
        );
    }

    #[test]
    fn reports_display_readably() {
        let world = World::new(KvBackend::default());
        let r = world.cost_report();
        assert!(r.to_string().contains("index store"));
        assert!(world
            .storage_cost_per_month()
            .to_string()
            .contains("/month"));
    }

    #[test]
    fn storage_cost_uses_stored_bytes() {
        let mut world = World::new(KvBackend::default());
        world.s3.create_bucket("b");
        world
            .s3
            .put(SimTime::ZERO, "b", "k", vec![0; 2_000_000_000])
            .unwrap();
        let st = world.storage_cost_per_month();
        // 2 GB × $0.125 = exactly $0.25, compared in picodollars.
        assert_eq!(st.file_store.pico(), 250_000_000_000);
        assert_eq!(st.index_store, Money::ZERO);
        assert_eq!(st.total(), st.file_store);
    }
}
