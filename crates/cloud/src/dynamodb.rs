//! The simulated DynamoDB key-value store (paper Section 6).
//!
//! Modelled behaviour, matching the aspects the paper's indexing relies on:
//!
//! * tables of items, composite hash + range primary key, items ≤ 64 KB,
//!   hash key ≤ 2 KB, range key ≤ 1 KB;
//! * multi-valued attributes whose values may be **binary** (the feature
//!   the paper exploits "to store compressed (encoded) sets of IDs in a
//!   single DynamoDB value");
//! * `get(T, k)` returns all items with hash key `k`; `batchGet` covers
//!   100 keys per API call; `put` replaces wholesale; `batchPut` writes
//!   25 items per call;
//! * *provisioned throughput*: reads and writes consume capacity units
//!   (1 write unit per KB written, 1 read unit per 4 KB read) served by a
//!   rate-limited queue — the source of the saturation visible in the
//!   paper's Figure 10;
//! * a fixed per-item storage overhead (DynamoDB bills 100 bytes of index
//!   overhead per item), the paper's `ovh(D, I)` — "noticeable, especially
//!   if keywords are not indexed", because small items pay it relatively
//!   more.

use crate::clock::{SimDuration, SimTime};
use crate::fault::FaultInjector;
#[cfg(test)]
use crate::kv::KvValue;
use crate::kv::{KvError, KvItem, KvProfile, KvStats, KvStore};
use crate::obs::{Outcome, Recorder, ServiceKind, Span};
use crate::service::ServiceQueue;
use std::collections::{BTreeMap, HashMap};

/// Per-item storage overhead billed by DynamoDB.
pub const ITEM_OVERHEAD_BYTES: u64 = 100;
/// Maximum item size.
pub const MAX_ITEM_BYTES: usize = 64 * 1024;
/// Maximum hash-key size.
pub const MAX_HASH_KEY_BYTES: usize = 2048;
/// Maximum range-key size.
pub const MAX_RANGE_KEY_BYTES: usize = 1024;
/// Items per batch put.
pub const BATCH_PUT_LIMIT: usize = 25;
/// Keys per batch get.
pub const BATCH_GET_LIMIT: usize = 100;

/// Provisioned-throughput and latency parameters.
#[derive(Debug, Clone)]
pub struct DynamoConfig {
    /// Write capacity units per second (1 unit = 1 KB written).
    pub write_units_per_sec: f64,
    /// Read capacity units per second (1 unit = 4 KB read,
    /// eventually-consistent reads count half).
    pub read_units_per_sec: f64,
    /// Per-request latency.
    pub latency: SimDuration,
}

impl Default for DynamoConfig {
    fn default() -> Self {
        DynamoConfig {
            write_units_per_sec: 10_000.0,
            read_units_per_sec: 20_000.0,
            latency: SimDuration::from_millis(8),
        }
    }
}

type Table = HashMap<String, BTreeMap<String, KvItem>>;

/// The simulated DynamoDB service.
pub struct DynamoDb {
    tables: HashMap<String, Table>,
    stats: KvStats,
    writes: ServiceQueue,
    reads: ServiceQueue,
    faults: FaultInjector,
    obs: Recorder,
}

impl DynamoDb {
    /// Creates a store with the given provisioning.
    pub fn new(config: DynamoConfig) -> DynamoDb {
        DynamoDb {
            tables: HashMap::new(),
            stats: KvStats::default(),
            writes: ServiceQueue::new(
                SimDuration::from_micros(300),
                config.write_units_per_sec,
                config.latency,
            ),
            reads: ServiceQueue::new(
                SimDuration::from_micros(300),
                config.read_units_per_sec,
                config.latency,
            ),
            faults: FaultInjector::off(),
            obs: Recorder::off(),
        }
    }

    /// Rolls the fault injector for a request that reached the service; a
    /// throttled attempt bills one capacity unit (the minimum charge for a
    /// rejected request) and one API round trip, and its failure response
    /// arrives after the request latency.
    fn maybe_throttle(&mut self, now: SimTime, is_write: bool) -> Result<(), KvError> {
        if self.faults.roll() {
            self.stats.throttled += 1;
            self.stats.api_requests += 1;
            let queue = if is_write { &self.writes } else { &self.reads };
            let available_at = now + queue.latency;
            if is_write {
                self.stats.put_ops += 1;
            } else {
                self.stats.get_ops += 1;
            }
            self.obs.record(|p, ctx| {
                let (op, price) = if is_write {
                    ("put", p.idx_put)
                } else {
                    ("get", p.idx_get)
                };
                Span::new(ServiceKind::Kv, op, now, available_at, ctx)
                    .units(1.0)
                    .billed(price)
                    .outcome(Outcome::Throttled)
            });
            return Err(KvError::Throttled { available_at });
        }
        Ok(())
    }

    /// Write capacity consumed by one item: a fixed per-item processing
    /// share plus its size in KB. (Real DynamoDB *bills* ceil(KB) per
    /// item; for service *time* the fractional-byte model matches the
    /// paper's observation that DynamoDB throughput was the indexing
    /// bottleneck — upload time tracks index bytes, with a per-item
    /// floor.)
    fn write_units(item_bytes: usize) -> f64 {
        0.05 + item_bytes as f64 / 1024.0
    }

    /// Read capacity consumed: a per-request share plus size in 4 KB
    /// units, halved for eventually-consistent reads (what index look-ups
    /// use).
    fn read_units(bytes: usize) -> f64 {
        0.25 + bytes as f64 / 4096.0 / 2.0
    }

    fn validate(&self, item: &KvItem) -> Result<(), KvError> {
        if item.hash_key.len() > MAX_HASH_KEY_BYTES {
            return Err(KvError::KeyTooLarge {
                limit: MAX_HASH_KEY_BYTES,
                got: item.hash_key.len(),
            });
        }
        if item.range_key.len() > MAX_RANGE_KEY_BYTES {
            return Err(KvError::KeyTooLarge {
                limit: MAX_RANGE_KEY_BYTES,
                got: item.range_key.len(),
            });
        }
        let size = item.byte_size();
        if size > MAX_ITEM_BYTES {
            return Err(KvError::ItemTooLarge {
                limit: MAX_ITEM_BYTES,
                got: size,
            });
        }
        Ok(())
    }

    fn table_mut(&mut self, table: &str) -> Result<&mut Table, KvError> {
        self.tables
            .get_mut(table)
            .ok_or_else(|| KvError::NoSuchTable(table.to_string()))
    }
}

impl Default for DynamoDb {
    fn default() -> Self {
        Self::new(DynamoConfig::default())
    }
}

impl KvStore for DynamoDb {
    fn profile(&self) -> KvProfile {
        KvProfile {
            name: "DynamoDB",
            supports_binary: true,
            max_value_bytes: MAX_ITEM_BYTES, // bounded by the item cap
            max_item_bytes: MAX_ITEM_BYTES,
            max_attrs_per_item: usize::MAX,
            batch_put_limit: BATCH_PUT_LIMIT,
            batch_get_limit: BATCH_GET_LIMIT,
        }
    }

    fn ensure_table(&mut self, table: &str) {
        self.tables.entry(table.to_string()).or_default();
    }

    fn batch_put(
        &mut self,
        now: SimTime,
        table: &str,
        items: Vec<KvItem>,
    ) -> Result<SimTime, KvError> {
        if items.len() > BATCH_PUT_LIMIT {
            return Err(KvError::BatchTooLarge {
                limit: BATCH_PUT_LIMIT,
                got: items.len(),
            });
        }
        let mut units = 0.0;
        let mut billed_units = 0u64;
        let mut bytes_written = 0u64;
        for item in &items {
            self.validate(item)?;
            bytes_written += item.byte_size() as u64;
            let item_units = Self::write_units(item.byte_size());
            units += item_units;
            // Billed capacity rounds up *per item* (min 1 unit), as real
            // DynamoDB does: batching packs items into one API round trip
            // but never changes the provisioned capacity they consume.
            billed_units += (item_units.ceil() as u64).max(1);
        }
        self.maybe_throttle(now, true)?;
        let t = self.table_mut(table)?;
        let mut raw_delta: i64 = 0;
        let mut ovh_delta: i64 = 0;
        for item in items {
            let size = item.byte_size() as i64;
            let rows = t.entry(item.hash_key.clone()).or_default();
            if let Some(old) = rows.insert(item.range_key.clone(), item) {
                raw_delta -= old.byte_size() as i64;
                ovh_delta -= ITEM_OVERHEAD_BYTES as i64;
            }
            raw_delta += size;
            ovh_delta += ITEM_OVERHEAD_BYTES as i64;
        }
        self.stats.raw_bytes = (self.stats.raw_bytes as i64 + raw_delta) as u64;
        self.stats.overhead_bytes = (self.stats.overhead_bytes as i64 + ovh_delta) as u64;
        // DynamoDB bills by provisioned *write capacity units*, which is
        // what the cost model's `IDXput$ × |op(D, I)|` term multiplies —
        // the paper's Table 6 / Figure 12 DynamoDB charges track data
        // volume, not request counts. Service *time* keeps the fractional
        // aggregate so throughput still tracks index bytes (Figure 10).
        self.stats.put_ops += billed_units;
        self.stats.api_requests += 1;
        let ready = self.writes.serve(now, units);
        self.obs.record(|p, ctx| {
            Span::new(ServiceKind::Kv, "batch_put", now, ready, ctx)
                .bytes(bytes_written)
                .units(units)
                .busy(self.writes.service_time(units))
                .billed(p.idx_put * billed_units)
        });
        Ok(ready)
    }

    fn batch_delete(
        &mut self,
        now: SimTime,
        table: &str,
        keys: &[(String, String)],
    ) -> Result<SimTime, KvError> {
        if keys.len() > BATCH_PUT_LIMIT {
            return Err(KvError::BatchTooLarge {
                limit: BATCH_PUT_LIMIT,
                got: keys.len(),
            });
        }
        if !self.tables.contains_key(table) {
            return Err(KvError::NoSuchTable(table.to_string()));
        }
        self.maybe_throttle(now, true)?;
        let t = self.table_mut(table)?;
        let mut units = 0.0;
        let mut billed_units = 0u64;
        let mut raw_delta: i64 = 0;
        let mut ovh_delta: i64 = 0;
        for (hash, range) in keys {
            let removed = match t.get_mut(hash) {
                Some(rows) => {
                    let old = rows.remove(range);
                    if rows.is_empty() {
                        t.remove(hash);
                    }
                    old
                }
                None => None,
            };
            // DeleteItem consumes write capacity sized by the *deleted*
            // item — and a delete of a nonexistent item still consumes
            // one write unit, which is what keeps retried deletes billed
            // (and idempotent) rather than free no-ops.
            let item_units = match &removed {
                Some(old) => {
                    let size = old.byte_size();
                    raw_delta -= size as i64;
                    ovh_delta -= ITEM_OVERHEAD_BYTES as i64;
                    Self::write_units(size)
                }
                None => Self::write_units(0),
            };
            units += item_units;
            billed_units += (item_units.ceil() as u64).max(1);
        }
        self.stats.raw_bytes = (self.stats.raw_bytes as i64 + raw_delta) as u64;
        self.stats.overhead_bytes = (self.stats.overhead_bytes as i64 + ovh_delta) as u64;
        self.stats.put_ops += billed_units;
        self.stats.api_requests += 1;
        let ready = self.writes.serve(now, units);
        self.obs.record(|p, ctx| {
            Span::new(ServiceKind::Kv, "batch_delete", now, ready, ctx)
                .units(units)
                .busy(self.writes.service_time(units))
                .billed(p.idx_put * billed_units)
        });
        Ok(ready)
    }

    fn get(
        &mut self,
        now: SimTime,
        table: &str,
        hash_key: &str,
    ) -> Result<(Vec<KvItem>, SimTime), KvError> {
        if !self.tables.contains_key(table) {
            return Err(KvError::NoSuchTable(table.to_string()));
        }
        self.maybe_throttle(now, false)?;
        let t = self.tables.get(table).expect("checked above");
        let items: Vec<KvItem> = t
            .get(hash_key)
            .map(|rows| rows.values().cloned().collect())
            .unwrap_or_default();
        let bytes: usize = items.iter().map(KvItem::byte_size).sum();
        let units = Self::read_units(bytes);
        // Single-key request: the per-request ceil *is* the per-key ceil.
        let billed_units = (units.ceil() as u64).max(1);
        self.stats.get_ops += billed_units;
        self.stats.api_requests += 1;
        self.stats.bytes_read += bytes as u64;
        let ready = self.reads.serve(now, units);
        self.obs.record(|p, ctx| {
            Span::new(ServiceKind::Kv, "get", now, ready, ctx)
                .bytes(bytes as u64)
                .units(units)
                .busy(self.reads.service_time(units))
                .billed(p.idx_get * billed_units)
        });
        Ok((items, ready))
    }

    fn batch_get(
        &mut self,
        now: SimTime,
        table: &str,
        hash_keys: &[String],
    ) -> Result<(Vec<KvItem>, SimTime), KvError> {
        if hash_keys.len() > BATCH_GET_LIMIT {
            return Err(KvError::BatchTooLarge {
                limit: BATCH_GET_LIMIT,
                got: hash_keys.len(),
            });
        }
        if !self.tables.contains_key(table) {
            return Err(KvError::NoSuchTable(table.to_string()));
        }
        self.maybe_throttle(now, false)?;
        let t = self.tables.get(table).expect("checked above");
        let mut items = Vec::new();
        let mut billed_units = 0u64;
        for k in hash_keys {
            let first = items.len();
            if let Some(rows) = t.get(k) {
                items.extend(rows.values().cloned());
            }
            // Billed read capacity rounds up *per key* (min 1 unit), so a
            // batch get bills exactly what the same keys fetched one by
            // one would — batching saves API round trips, not capacity.
            let key_bytes: usize = items[first..].iter().map(KvItem::byte_size).sum();
            billed_units += (Self::read_units(key_bytes).ceil() as u64).max(1);
        }
        let bytes: usize = items.iter().map(KvItem::byte_size).sum();
        // Service time keeps the fractional aggregate: one request's worth
        // of overhead plus a per-key share plus volume.
        let units = Self::read_units(bytes) + 0.25 * (hash_keys.len().saturating_sub(1)) as f64;
        self.stats.get_ops += billed_units;
        self.stats.api_requests += 1;
        self.stats.bytes_read += bytes as u64;
        let ready = self.reads.serve(now, units);
        self.obs.record(|p, ctx| {
            Span::new(ServiceKind::Kv, "batch_get", now, ready, ctx)
                .bytes(bytes as u64)
                .units(units)
                .busy(self.reads.service_time(units))
                .billed(p.idx_get * billed_units)
        });
        Ok((items, ready))
    }

    fn stats(&self) -> KvStats {
        self.stats
    }

    fn set_faults(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.obs = recorder;
    }

    fn faults_active(&self) -> bool {
        self.faults.is_active()
    }

    fn peek_all(&self) -> Vec<(String, KvItem)> {
        let mut names: Vec<&String> = self.tables.keys().collect();
        names.sort();
        let mut out = Vec::new();
        for name in names {
            let mut hashes: Vec<&String> = self.tables[name].keys().collect();
            hashes.sort();
            for h in hashes {
                for item in self.tables[name][h].values() {
                    out.push((name.clone(), item.clone()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(hash: &str, range: &str, uri: &str, val: KvValue) -> KvItem {
        KvItem {
            hash_key: hash.into(),
            range_key: range.into(),
            attrs: vec![(uri.into(), vec![val])],
        }
    }

    #[test]
    fn put_then_get_by_hash_key() {
        let mut db = DynamoDb::default();
        db.ensure_table("idx");
        db.batch_put(
            SimTime::ZERO,
            "idx",
            vec![
                item("ename", "u1", "delacroix.xml", KvValue::S(String::new())),
                item("ename", "u2", "manet.xml", KvValue::S(String::new())),
                item("aid", "u3", "delacroix.xml", KvValue::S(String::new())),
            ],
        )
        .unwrap();
        let (items, _) = db.get(SimTime::ZERO, "idx", "ename").unwrap();
        assert_eq!(items.len(), 2);
        let (items, _) = db.get(SimTime::ZERO, "idx", "missing").unwrap();
        assert!(items.is_empty());
    }

    #[test]
    fn same_primary_key_replaces() {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        db.batch_put(
            SimTime::ZERO,
            "t",
            vec![item("k", "r", "a", KvValue::S("1".into()))],
        )
        .unwrap();
        db.batch_put(
            SimTime::ZERO,
            "t",
            vec![item("k", "r", "b", KvValue::S("22".into()))],
        )
        .unwrap();
        let (items, _) = db.get(SimTime::ZERO, "t", "k").unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].attrs[0].0, "b");
        // Storage reflects only the replacement item (+ one overhead).
        let st = db.stats();
        assert_eq!(st.raw_bytes, items[0].byte_size() as u64);
        assert_eq!(st.overhead_bytes, ITEM_OVERHEAD_BYTES);
    }

    #[test]
    fn binary_values_are_supported() {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        db.batch_put(
            SimTime::ZERO,
            "t",
            vec![item("k", "r", "doc", KvValue::B(vec![1, 2, 3]))],
        )
        .unwrap();
        let (items, _) = db.get(SimTime::ZERO, "t", "k").unwrap();
        assert!(items[0].attrs[0].1[0].is_binary());
    }

    #[test]
    fn limits_are_enforced() {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        // Oversized item.
        let big = item("k", "r", "doc", KvValue::B(vec![0; MAX_ITEM_BYTES + 1]));
        assert!(matches!(
            db.batch_put(SimTime::ZERO, "t", vec![big]),
            Err(KvError::ItemTooLarge { .. })
        ));
        // Oversized hash key.
        let long_key = item(&"k".repeat(3000), "r", "doc", KvValue::S(String::new()));
        assert!(matches!(
            db.batch_put(SimTime::ZERO, "t", vec![long_key]),
            Err(KvError::KeyTooLarge { .. })
        ));
        // Oversized batch.
        let many = (0..26)
            .map(|i| item("k", &format!("r{i}"), "doc", KvValue::S(String::new())))
            .collect();
        assert!(matches!(
            db.batch_put(SimTime::ZERO, "t", many),
            Err(KvError::BatchTooLarge { .. })
        ));
        // Missing table.
        assert!(matches!(
            db.get(SimTime::ZERO, "nope", "k"),
            Err(KvError::NoSuchTable(_))
        ));
    }

    #[test]
    fn billing_counts_capacity_units_not_batches() {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        let items: Vec<KvItem> = (0..25)
            .map(|i| item("k", &format!("r{i}"), "doc", KvValue::S(String::new())))
            .collect();
        db.batch_put(SimTime::ZERO, "t", items).unwrap();
        let st = db.stats();
        // 25 small items each bill the 1-unit per-item minimum, in one
        // API request.
        assert_eq!(st.put_ops, 25);
        assert_eq!(st.api_requests, 1);
        // A single 8 KB item bills by volume: ceil(0.05 + 8) = 9 units.
        let mut db2 = DynamoDb::default();
        db2.ensure_table("t");
        db2.batch_put(
            SimTime::ZERO,
            "t",
            vec![item("k", "r", "doc", KvValue::B(vec![0; 8192]))],
        )
        .unwrap();
        assert_eq!(db2.stats().put_ops, 9);
    }

    #[test]
    fn batching_never_changes_billed_write_units() {
        // The same 25 items, uploaded as one batch and one by one, must
        // consume identical billed capacity — batching may only save API
        // round trips. Mix sizes so several per-item ceils are fractional.
        let items: Vec<KvItem> = (0..25)
            .map(|i| {
                item(
                    "k",
                    &format!("r{i}"),
                    "doc",
                    KvValue::B(vec![0; (i * 700) % 9000]),
                )
            })
            .collect();
        let mut batched = DynamoDb::default();
        batched.ensure_table("t");
        batched
            .batch_put(SimTime::ZERO, "t", items.clone())
            .unwrap();
        let mut single = DynamoDb::default();
        single.ensure_table("t");
        for it in items {
            single.batch_put(SimTime::ZERO, "t", vec![it]).unwrap();
        }
        assert_eq!(batched.stats().put_ops, single.stats().put_ops);
        assert_eq!(batched.stats().api_requests, 1);
        assert_eq!(single.stats().api_requests, 25);
    }

    #[test]
    fn batching_never_changes_billed_read_units() {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        for i in 0..10 {
            db.batch_put(
                SimTime::ZERO,
                "t",
                vec![item(
                    &format!("k{i}"),
                    "r",
                    "d",
                    KvValue::B(vec![0; (i * 1500) % 12_000]),
                )],
            )
            .unwrap();
        }
        let keys: Vec<String> = (0..10).map(|i| format!("k{i}")).collect();
        let before = db.stats();
        db.batch_get(SimTime::ZERO, "t", &keys).unwrap();
        let batched_units = db.stats().get_ops - before.get_ops;
        let mid = db.stats();
        for k in &keys {
            db.get(SimTime::ZERO, "t", k).unwrap();
        }
        let single_units = db.stats().get_ops - mid.get_ops;
        assert_eq!(batched_units, single_units);
    }

    #[test]
    fn delete_bills_write_units_and_frees_storage() {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        // An 8 KB item bills ceil(0.05 + 8) = 9 units to write — and the
        // same 9 units to delete (DeleteItem is billed by the size of the
        // removed item).
        db.batch_put(
            SimTime::ZERO,
            "t",
            vec![item("k", "r", "doc", KvValue::B(vec![0; 8192]))],
        )
        .unwrap();
        let st = db.stats();
        assert_eq!(st.put_ops, 9);
        assert!(st.raw_bytes > 0);
        assert_eq!(st.overhead_bytes, ITEM_OVERHEAD_BYTES);
        let done = db
            .batch_delete(SimTime(3), "t", &[("k".into(), "r".into())])
            .unwrap();
        assert!(done > SimTime(3));
        let st = db.stats();
        assert_eq!(st.put_ops, 18, "delete bills like the put did");
        assert_eq!(st.raw_bytes, 0);
        assert_eq!(st.overhead_bytes, 0);
        assert!(db.peek_all().is_empty());
    }

    #[test]
    fn deleting_a_missing_key_bills_the_minimum_and_is_idempotent() {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        db.batch_delete(SimTime::ZERO, "t", &[("k".into(), "r".into())])
            .unwrap();
        db.batch_delete(SimTime::ZERO, "t", &[("k".into(), "r".into())])
            .unwrap();
        let st = db.stats();
        assert_eq!(st.put_ops, 2, "each attempt bills one write unit");
        assert_eq!(st.api_requests, 2);
        assert_eq!(st.raw_bytes, 0);
        assert_eq!(st.overhead_bytes, 0);
        // Limits still apply.
        let many: Vec<(String, String)> = (0..26).map(|i| ("k".into(), format!("r{i}"))).collect();
        assert!(matches!(
            db.batch_delete(SimTime::ZERO, "t", &many),
            Err(KvError::BatchTooLarge { .. })
        ));
        assert!(matches!(
            db.batch_delete(SimTime::ZERO, "nope", &[("k".into(), "r".into())]),
            Err(KvError::NoSuchTable(_))
        ));
    }

    #[test]
    fn throttled_deletes_leave_items_in_place() {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        db.batch_put(
            SimTime::ZERO,
            "t",
            vec![item("k", "r", "d", KvValue::S(String::new()))],
        )
        .unwrap();
        db.set_faults(FaultInjector::new(1.0, 17)); // clamped to 0.95
        let mut throttles = 0;
        for _ in 0..50 {
            match db.batch_delete(SimTime(55), "t", &[("k".into(), "r".into())]) {
                Ok(_) => {}
                Err(KvError::Throttled { available_at }) => {
                    assert!(available_at > SimTime(55));
                    throttles += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(throttles > 0, "a 95% rate throttles within 50 calls");
        assert_eq!(db.stats().throttled, throttles);
        assert!(db.peek_all().is_empty(), "a non-throttled attempt landed");
    }

    #[test]
    fn saturation_grows_completion_times() {
        // A provisioned write rate of 100 units/s given 1000 small items
        // must take roughly a second (capacity + per-request overhead).
        let mut db = DynamoDb::new(DynamoConfig {
            write_units_per_sec: 100.0,
            ..Default::default()
        });
        db.ensure_table("t");
        let mut last = SimTime::ZERO;
        for i in 0..1000 {
            last = db
                .batch_put(
                    SimTime::ZERO,
                    "t",
                    vec![item("k", &format!("r{i}"), "d", KvValue::S(String::new()))],
                )
                .unwrap();
        }
        assert!(last.as_secs_f64() > 0.8, "took {}", last.as_secs_f64());
        // Larger items consume proportionally more capacity.
        let mut db2 = DynamoDb::new(DynamoConfig {
            write_units_per_sec: 100.0,
            ..Default::default()
        });
        db2.ensure_table("t");
        let mut last2 = SimTime::ZERO;
        for i in 0..1000 {
            last2 = db2
                .batch_put(
                    SimTime::ZERO,
                    "t",
                    vec![item("k", &format!("r{i}"), "d", KvValue::B(vec![0; 2048]))],
                )
                .unwrap();
        }
        assert!(last2.micros() > 5 * last.micros());
    }

    #[test]
    fn throttled_requests_bill_a_unit_and_leave_data_untouched() {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        db.set_faults(FaultInjector::new(1.0, 11)); // clamped to 0.95
        let mut throttles = 0;
        for i in 0..50 {
            match db.batch_put(
                SimTime(55),
                "t",
                vec![item("k", &format!("r{i}"), "d", KvValue::S(String::new()))],
            ) {
                Ok(_) => {}
                Err(KvError::Throttled { available_at }) => {
                    assert!(available_at > SimTime(55));
                    throttles += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(throttles > 0, "a 95% rate throttles within 50 calls");
        let st = db.stats();
        assert_eq!(st.throttled, throttles);
        assert_eq!(st.api_requests, 50);
        // Only the successful puts landed.
        assert_eq!(db.peek_all().len(), 50 - throttles as usize);
    }

    #[test]
    fn peek_all_is_sorted_and_free() {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        db.batch_put(
            SimTime::ZERO,
            "t",
            vec![
                item("b", "r", "d", KvValue::S(String::new())),
                item("a", "r2", "d", KvValue::S(String::new())),
                item("a", "r1", "d", KvValue::S(String::new())),
            ],
        )
        .unwrap();
        let before = db.stats();
        let all = db.peek_all();
        assert_eq!(db.stats(), before, "peek_all must not bill anything");
        let keys: Vec<(String, String)> = all
            .iter()
            .map(|(_, i)| (i.hash_key.clone(), i.range_key.clone()))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("a".into(), "r1".into()),
                ("a".into(), "r2".into()),
                ("b".into(), "r".into()),
            ]
        );
    }

    #[test]
    fn batch_get_covers_many_keys_in_one_request() {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        for i in 0..5 {
            db.batch_put(
                SimTime::ZERO,
                "t",
                vec![item(&format!("k{i}"), "r", "d", KvValue::S(String::new()))],
            )
            .unwrap();
        }
        let keys: Vec<String> = (0..5).map(|i| format!("k{i}")).collect();
        let before = db.stats().api_requests;
        let (items, _) = db.batch_get(SimTime::ZERO, "t", &keys).unwrap();
        assert_eq!(items.len(), 5);
        assert_eq!(db.stats().api_requests, before + 1);
        // Five near-empty keys each bill the 1-unit per-key minimum.
        assert_eq!(db.stats().get_ops, 5);
    }
}
