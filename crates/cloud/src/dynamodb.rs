//! The simulated DynamoDB key-value store (paper Section 6).
//!
//! Modelled behaviour, matching the aspects the paper's indexing relies on:
//!
//! * tables of items, composite hash + range primary key, items ≤ 64 KB,
//!   hash key ≤ 2 KB, range key ≤ 1 KB;
//! * multi-valued attributes whose values may be **binary** (the feature
//!   the paper exploits "to store compressed (encoded) sets of IDs in a
//!   single DynamoDB value");
//! * `get(T, k)` returns all items with hash key `k`; `batchGet` covers
//!   100 keys per API call; `put` replaces wholesale; `batchPut` writes
//!   25 items per call;
//! * *provisioned throughput*: reads and writes consume capacity units
//!   (1 write unit per KB written, 1 read unit per 4 KB read) served by a
//!   rate-limited queue — the source of the saturation visible in the
//!   paper's Figure 10;
//! * a fixed per-item storage overhead (DynamoDB bills 100 bytes of index
//!   overhead per item), the paper's `ovh(D, I)` — "noticeable, especially
//!   if keywords are not indexed", because small items pay it relatively
//!   more.

use crate::clock::{SimDuration, SimTime};
use crate::fault::FaultInjector;
#[cfg(test)]
use crate::kv::KvValue;
use crate::kv::{KvError, KvItem, KvProfile, KvStats, KvStore};
use crate::obs::{Outcome, Recorder, ServiceKind, Span};
use crate::service::ServiceQueue;
use crate::shard::ShardPlan;
use std::collections::{BTreeMap, HashMap};

/// Per-item storage overhead billed by DynamoDB.
pub const ITEM_OVERHEAD_BYTES: u64 = 100;
/// Maximum item size.
pub const MAX_ITEM_BYTES: usize = 64 * 1024;
/// Maximum hash-key size.
pub const MAX_HASH_KEY_BYTES: usize = 2048;
/// Maximum range-key size.
pub const MAX_RANGE_KEY_BYTES: usize = 1024;
/// Items per batch put.
pub const BATCH_PUT_LIMIT: usize = 25;
/// Keys per batch get.
pub const BATCH_GET_LIMIT: usize = 100;

/// Provisioned-throughput and latency parameters.
#[derive(Debug, Clone)]
pub struct DynamoConfig {
    /// Write capacity units per second (1 unit = 1 KB written).
    pub write_units_per_sec: f64,
    /// Read capacity units per second (1 unit = 4 KB read,
    /// eventually-consistent reads count half).
    pub read_units_per_sec: f64,
    /// Per-request latency.
    pub latency: SimDuration,
}

impl Default for DynamoConfig {
    fn default() -> Self {
        DynamoConfig {
            write_units_per_sec: 10_000.0,
            read_units_per_sec: 20_000.0,
            latency: SimDuration::from_millis(8),
        }
    }
}

type Table = HashMap<String, BTreeMap<String, KvItem>>;

/// The write/read service queues of one provisioned shard: an
/// independent slice of throughput at the configured per-shard rates.
#[derive(Debug, Clone)]
struct ShardLanes {
    writes: ServiceQueue,
    reads: ServiceQueue,
}

impl ShardLanes {
    fn new(config: &DynamoConfig) -> ShardLanes {
        ShardLanes {
            writes: ServiceQueue::new(
                SimDuration::from_micros(300),
                config.write_units_per_sec,
                config.latency,
            ),
            reads: ServiceQueue::new(
                SimDuration::from_micros(300),
                config.read_units_per_sec,
                config.latency,
            ),
        }
    }
}

/// Per-shard aggregation of one batch request's subset: service-time
/// units, billed capacity units, and payload bytes.
#[derive(Debug, Clone, Copy, Default)]
struct ShardAgg {
    units: f64,
    billed: u64,
    bytes: u64,
}

/// The simulated DynamoDB service.
pub struct DynamoDb {
    tables: HashMap<String, Table>,
    stats: KvStats,
    writes: ServiceQueue,
    reads: ServiceQueue,
    faults: FaultInjector,
    obs: Recorder,
    config: DynamoConfig,
    /// Shard routing. [`ShardPlan::single`] (the default) keeps the
    /// service-wide `writes`/`reads` queues above serving every request —
    /// the unsharded store, byte-identical to the pre-sharding build.
    plan: ShardPlan,
    /// Per-table shard lanes, `plan.shards()` per table; populated only
    /// while the plan is sharded.
    lanes: HashMap<String, Vec<ShardLanes>>,
}

impl DynamoDb {
    /// Creates a store with the given provisioning.
    pub fn new(config: DynamoConfig) -> DynamoDb {
        DynamoDb {
            tables: HashMap::new(),
            stats: KvStats::default(),
            writes: ServiceQueue::new(
                SimDuration::from_micros(300),
                config.write_units_per_sec,
                config.latency,
            ),
            reads: ServiceQueue::new(
                SimDuration::from_micros(300),
                config.read_units_per_sec,
                config.latency,
            ),
            faults: FaultInjector::off(),
            obs: Recorder::off(),
            config,
            plan: ShardPlan::single(),
            lanes: HashMap::new(),
        }
    }

    /// The shard plan in force.
    pub fn shard_plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Makes sure `table` has one lane pair per shard of the current plan.
    fn ensure_lanes(&mut self, table: &str) {
        if self.plan.is_sharded() && !self.lanes.contains_key(table) {
            let lanes = (0..self.plan.shards())
                .map(|_| ShardLanes::new(&self.config))
                .collect();
            self.lanes.insert(table.to_string(), lanes);
        }
    }

    /// Groups a batch's per-item `(service units, billed units, bytes)`
    /// contributions by destination shard, in shard-id order. The sums
    /// over all shards equal the unsharded aggregates exactly (the
    /// fractional unit models decompose per item / per key), which is
    /// what keeps sharded billing byte-identical.
    fn group_by_shard<'a, I>(&self, parts: I) -> BTreeMap<usize, ShardAgg>
    where
        I: Iterator<Item = (&'a str, f64, u64, u64)>,
    {
        let mut groups: BTreeMap<usize, ShardAgg> = BTreeMap::new();
        for (hash_key, units, billed, bytes) in parts {
            let agg = groups.entry(self.plan.route(hash_key)).or_default();
            agg.units += units;
            agg.billed += billed;
            agg.bytes += bytes;
        }
        groups
    }

    /// The shard to tag a request's spans with: the routed shard for a
    /// single shard group, `None` when the batch fans out (or the store
    /// is unsharded).
    fn shard_hint(groups: &BTreeMap<usize, ShardAgg>) -> Option<usize> {
        if groups.len() == 1 {
            groups.keys().next().copied()
        } else {
            None
        }
    }

    /// Rolls the fault injector for a request that reached the service; a
    /// throttled attempt bills one capacity unit (the minimum charge for a
    /// rejected request) and one API round trip, and its failure response
    /// arrives after the request latency. `shard` tags the throttle span
    /// when the rejected request resolves to one shard, so hot shards are
    /// visible in the throttle series.
    fn maybe_throttle(
        &mut self,
        now: SimTime,
        is_write: bool,
        shard: Option<usize>,
    ) -> Result<(), KvError> {
        if self.faults.roll() {
            self.stats.throttled += 1;
            self.stats.api_requests += 1;
            let queue = if is_write { &self.writes } else { &self.reads };
            let available_at = now + queue.latency;
            if is_write {
                self.stats.put_ops += 1;
            } else {
                self.stats.get_ops += 1;
            }
            self.obs.record(|p, ctx| {
                let (op, price) = if is_write {
                    ("put", p.idx_put)
                } else {
                    ("get", p.idx_get)
                };
                Span::new(ServiceKind::Kv, op, now, available_at, ctx)
                    .units(1.0)
                    .billed(price)
                    .outcome(Outcome::Throttled)
                    .shard(shard)
            });
            return Err(KvError::Throttled { available_at });
        }
        Ok(())
    }

    /// Serves one write batch's shard groups: each touched shard's write
    /// lane serves its subset as one request, and the batch completes
    /// when the slowest shard responds. One span per shard, tagged.
    fn serve_write_shards(
        &mut self,
        now: SimTime,
        table: &str,
        op: &'static str,
        groups: &BTreeMap<usize, ShardAgg>,
    ) -> SimTime {
        let lanes = self.lanes.get_mut(table).expect("ensure_lanes ran");
        let mut ready = now;
        for (&s, agg) in groups {
            let lane = &mut lanes[s].writes;
            let done = lane.serve(now, agg.units);
            ready = ready.max(done);
            let busy = lane.service_time(agg.units);
            let (units, billed, bytes) = (agg.units, agg.billed, agg.bytes);
            self.obs.record(|p, ctx| {
                Span::new(ServiceKind::Kv, op, now, done, ctx)
                    .bytes(bytes)
                    .units(units)
                    .busy(busy)
                    .billed(p.idx_put * billed)
                    .shard(Some(s))
            });
        }
        ready
    }

    /// Read-side counterpart of [`DynamoDb::serve_write_shards`].
    fn serve_read_shards(
        &mut self,
        now: SimTime,
        table: &str,
        op: &'static str,
        groups: &BTreeMap<usize, ShardAgg>,
    ) -> SimTime {
        let lanes = self.lanes.get_mut(table).expect("ensure_lanes ran");
        let mut ready = now;
        for (&s, agg) in groups {
            let lane = &mut lanes[s].reads;
            let done = lane.serve(now, agg.units);
            ready = ready.max(done);
            let busy = lane.service_time(agg.units);
            let (units, billed, bytes) = (agg.units, agg.billed, agg.bytes);
            self.obs.record(|p, ctx| {
                Span::new(ServiceKind::Kv, op, now, done, ctx)
                    .bytes(bytes)
                    .units(units)
                    .busy(busy)
                    .billed(p.idx_get * billed)
                    .shard(Some(s))
            });
        }
        ready
    }

    /// Write capacity consumed by one item: a fixed per-item processing
    /// share plus its size in KB. (Real DynamoDB *bills* ceil(KB) per
    /// item; for service *time* the fractional-byte model matches the
    /// paper's observation that DynamoDB throughput was the indexing
    /// bottleneck — upload time tracks index bytes, with a per-item
    /// floor.)
    fn write_units(item_bytes: usize) -> f64 {
        0.05 + item_bytes as f64 / 1024.0
    }

    /// Read capacity consumed: a per-request share plus size in 4 KB
    /// units, halved for eventually-consistent reads (what index look-ups
    /// use).
    fn read_units(bytes: usize) -> f64 {
        0.25 + bytes as f64 / 4096.0 / 2.0
    }

    fn validate(&self, item: &KvItem) -> Result<(), KvError> {
        if item.hash_key.len() > MAX_HASH_KEY_BYTES {
            return Err(KvError::KeyTooLarge {
                limit: MAX_HASH_KEY_BYTES,
                got: item.hash_key.len(),
            });
        }
        if item.range_key.len() > MAX_RANGE_KEY_BYTES {
            return Err(KvError::KeyTooLarge {
                limit: MAX_RANGE_KEY_BYTES,
                got: item.range_key.len(),
            });
        }
        let size = item.byte_size();
        if size > MAX_ITEM_BYTES {
            return Err(KvError::ItemTooLarge {
                limit: MAX_ITEM_BYTES,
                got: size,
            });
        }
        Ok(())
    }

    fn table_mut(&mut self, table: &str) -> Result<&mut Table, KvError> {
        self.tables
            .get_mut(table)
            .ok_or_else(|| KvError::NoSuchTable(table.to_string()))
    }
}

impl Default for DynamoDb {
    fn default() -> Self {
        Self::new(DynamoConfig::default())
    }
}

impl KvStore for DynamoDb {
    fn profile(&self) -> KvProfile {
        KvProfile {
            name: "DynamoDB",
            supports_binary: true,
            max_value_bytes: MAX_ITEM_BYTES, // bounded by the item cap
            max_item_bytes: MAX_ITEM_BYTES,
            max_attrs_per_item: usize::MAX,
            batch_put_limit: BATCH_PUT_LIMIT,
            batch_get_limit: BATCH_GET_LIMIT,
        }
    }

    fn ensure_table(&mut self, table: &str) {
        self.tables.entry(table.to_string()).or_default();
        self.ensure_lanes(table);
    }

    fn set_shard_plan(&mut self, plan: ShardPlan) {
        self.plan = plan;
        self.lanes.clear();
        if self.plan.is_sharded() {
            let tables: Vec<String> = self.tables.keys().cloned().collect();
            for t in tables {
                self.ensure_lanes(&t);
            }
        }
    }

    fn batch_put(
        &mut self,
        now: SimTime,
        table: &str,
        items: Vec<KvItem>,
    ) -> Result<SimTime, KvError> {
        if items.len() > BATCH_PUT_LIMIT {
            return Err(KvError::BatchTooLarge {
                limit: BATCH_PUT_LIMIT,
                got: items.len(),
            });
        }
        let mut units = 0.0;
        let mut billed_units = 0u64;
        let mut bytes_written = 0u64;
        for item in &items {
            self.validate(item)?;
            bytes_written += item.byte_size() as u64;
            let item_units = Self::write_units(item.byte_size());
            units += item_units;
            // Billed capacity rounds up *per item* (min 1 unit), as real
            // DynamoDB does: batching packs items into one API round trip
            // but never changes the provisioned capacity they consume.
            billed_units += (item_units.ceil() as u64).max(1);
        }
        let groups = self.plan.is_sharded().then(|| {
            self.group_by_shard(items.iter().map(|item| {
                let size = item.byte_size();
                let u = Self::write_units(size);
                (
                    item.hash_key.as_str(),
                    u,
                    (u.ceil() as u64).max(1),
                    size as u64,
                )
            }))
        });
        self.maybe_throttle(now, true, groups.as_ref().and_then(Self::shard_hint))?;
        let t = self.table_mut(table)?;
        let mut raw_delta: i64 = 0;
        let mut ovh_delta: i64 = 0;
        for item in items {
            let size = item.byte_size() as i64;
            let rows = t.entry(item.hash_key.clone()).or_default();
            if let Some(old) = rows.insert(item.range_key.clone(), item) {
                raw_delta -= old.byte_size() as i64;
                ovh_delta -= ITEM_OVERHEAD_BYTES as i64;
            }
            raw_delta += size;
            ovh_delta += ITEM_OVERHEAD_BYTES as i64;
        }
        self.stats.raw_bytes = (self.stats.raw_bytes as i64 + raw_delta) as u64;
        self.stats.overhead_bytes = (self.stats.overhead_bytes as i64 + ovh_delta) as u64;
        // DynamoDB bills by provisioned *write capacity units*, which is
        // what the cost model's `IDXput$ × |op(D, I)|` term multiplies —
        // the paper's Table 6 / Figure 12 DynamoDB charges track data
        // volume, not request counts. Service *time* keeps the fractional
        // aggregate so throughput still tracks index bytes (Figure 10).
        self.stats.put_ops += billed_units;
        self.stats.api_requests += 1;
        let ready = match &groups {
            Some(g) => {
                self.ensure_lanes(table);
                self.serve_write_shards(now, table, "batch_put", g)
            }
            None => {
                let ready = self.writes.serve(now, units);
                self.obs.record(|p, ctx| {
                    Span::new(ServiceKind::Kv, "batch_put", now, ready, ctx)
                        .bytes(bytes_written)
                        .units(units)
                        .busy(self.writes.service_time(units))
                        .billed(p.idx_put * billed_units)
                });
                ready
            }
        };
        Ok(ready)
    }

    fn batch_delete(
        &mut self,
        now: SimTime,
        table: &str,
        keys: &[(String, String)],
    ) -> Result<SimTime, KvError> {
        if keys.len() > BATCH_PUT_LIMIT {
            return Err(KvError::BatchTooLarge {
                limit: BATCH_PUT_LIMIT,
                got: keys.len(),
            });
        }
        if !self.tables.contains_key(table) {
            return Err(KvError::NoSuchTable(table.to_string()));
        }
        // Routes are decided by hash key alone, so they can be fixed
        // before the mutation loop takes the table borrow.
        let routes: Vec<usize> = if self.plan.is_sharded() {
            keys.iter().map(|(h, _)| self.plan.route(h)).collect()
        } else {
            Vec::new()
        };
        let hint = routes
            .first()
            .copied()
            .filter(|&f| routes.iter().all(|&s| s == f));
        self.maybe_throttle(now, true, hint)?;
        let t = self.table_mut(table)?;
        let mut units = 0.0;
        let mut billed_units = 0u64;
        let mut raw_delta: i64 = 0;
        let mut ovh_delta: i64 = 0;
        let mut parts: Vec<(usize, f64, u64)> = Vec::with_capacity(routes.len());
        for (i, (hash, range)) in keys.iter().enumerate() {
            let removed = match t.get_mut(hash) {
                Some(rows) => {
                    let old = rows.remove(range);
                    if rows.is_empty() {
                        t.remove(hash);
                    }
                    old
                }
                None => None,
            };
            // DeleteItem consumes write capacity sized by the *deleted*
            // item — and a delete of a nonexistent item still consumes
            // one write unit, which is what keeps retried deletes billed
            // (and idempotent) rather than free no-ops.
            let item_units = match &removed {
                Some(old) => {
                    let size = old.byte_size();
                    raw_delta -= size as i64;
                    ovh_delta -= ITEM_OVERHEAD_BYTES as i64;
                    Self::write_units(size)
                }
                None => Self::write_units(0),
            };
            units += item_units;
            let item_billed = (item_units.ceil() as u64).max(1);
            billed_units += item_billed;
            if !routes.is_empty() {
                parts.push((routes[i], item_units, item_billed));
            }
        }
        self.stats.raw_bytes = (self.stats.raw_bytes as i64 + raw_delta) as u64;
        self.stats.overhead_bytes = (self.stats.overhead_bytes as i64 + ovh_delta) as u64;
        self.stats.put_ops += billed_units;
        self.stats.api_requests += 1;
        let ready = if routes.is_empty() {
            let ready = self.writes.serve(now, units);
            self.obs.record(|p, ctx| {
                Span::new(ServiceKind::Kv, "batch_delete", now, ready, ctx)
                    .units(units)
                    .busy(self.writes.service_time(units))
                    .billed(p.idx_put * billed_units)
            });
            ready
        } else {
            let mut groups: BTreeMap<usize, ShardAgg> = BTreeMap::new();
            for (s, u, b) in parts {
                let agg = groups.entry(s).or_default();
                agg.units += u;
                agg.billed += b;
            }
            self.ensure_lanes(table);
            self.serve_write_shards(now, table, "batch_delete", &groups)
        };
        Ok(ready)
    }

    fn get(
        &mut self,
        now: SimTime,
        table: &str,
        hash_key: &str,
    ) -> Result<(Vec<KvItem>, SimTime), KvError> {
        if !self.tables.contains_key(table) {
            return Err(KvError::NoSuchTable(table.to_string()));
        }
        let shard = self.plan.is_sharded().then(|| self.plan.route(hash_key));
        self.maybe_throttle(now, false, shard)?;
        let t = self.tables.get(table).expect("checked above");
        let items: Vec<KvItem> = t
            .get(hash_key)
            .map(|rows| rows.values().cloned().collect())
            .unwrap_or_default();
        let bytes: usize = items.iter().map(KvItem::byte_size).sum();
        let units = Self::read_units(bytes);
        // Single-key request: the per-request ceil *is* the per-key ceil.
        let billed_units = (units.ceil() as u64).max(1);
        self.stats.get_ops += billed_units;
        self.stats.api_requests += 1;
        self.stats.bytes_read += bytes as u64;
        let ready = match shard {
            Some(s) => {
                let mut groups: BTreeMap<usize, ShardAgg> = BTreeMap::new();
                groups.insert(
                    s,
                    ShardAgg {
                        units,
                        billed: billed_units,
                        bytes: bytes as u64,
                    },
                );
                self.ensure_lanes(table);
                self.serve_read_shards(now, table, "get", &groups)
            }
            None => {
                let ready = self.reads.serve(now, units);
                self.obs.record(|p, ctx| {
                    Span::new(ServiceKind::Kv, "get", now, ready, ctx)
                        .bytes(bytes as u64)
                        .units(units)
                        .busy(self.reads.service_time(units))
                        .billed(p.idx_get * billed_units)
                });
                ready
            }
        };
        Ok((items, ready))
    }

    fn batch_get(
        &mut self,
        now: SimTime,
        table: &str,
        hash_keys: &[String],
    ) -> Result<(Vec<KvItem>, SimTime), KvError> {
        if hash_keys.len() > BATCH_GET_LIMIT {
            return Err(KvError::BatchTooLarge {
                limit: BATCH_GET_LIMIT,
                got: hash_keys.len(),
            });
        }
        if !self.tables.contains_key(table) {
            return Err(KvError::NoSuchTable(table.to_string()));
        }
        let sharded = self.plan.is_sharded();
        let hint = if sharded {
            let mut shards = hash_keys.iter().map(|k| self.plan.route(k));
            let first = shards.next();
            first.filter(|&f| shards.all(|s| s == f))
        } else {
            None
        };
        self.maybe_throttle(now, false, hint)?;
        let t = self.tables.get(table).expect("checked above");
        let mut items = Vec::new();
        let mut billed_units = 0u64;
        let mut groups: BTreeMap<usize, ShardAgg> = BTreeMap::new();
        for k in hash_keys {
            let first = items.len();
            if let Some(rows) = t.get(k) {
                items.extend(rows.values().cloned());
            }
            // Billed read capacity rounds up *per key* (min 1 unit), so a
            // batch get bills exactly what the same keys fetched one by
            // one would — batching saves API round trips, not capacity.
            let key_bytes: usize = items[first..].iter().map(KvItem::byte_size).sum();
            let key_billed = (Self::read_units(key_bytes).ceil() as u64).max(1);
            billed_units += key_billed;
            if sharded {
                // The aggregate service units below decompose exactly per
                // key — read_units(B) + 0.25·(k−1) = Σ_k read_units(b_k) —
                // so routing each key's share to its shard conserves both
                // total service time and billed capacity.
                let agg = groups.entry(self.plan.route(k)).or_default();
                agg.units += Self::read_units(key_bytes);
                agg.billed += key_billed;
                agg.bytes += key_bytes as u64;
            }
        }
        let bytes: usize = items.iter().map(KvItem::byte_size).sum();
        // Service time keeps the fractional aggregate: one request's worth
        // of overhead plus a per-key share plus volume.
        let units = Self::read_units(bytes) + 0.25 * (hash_keys.len().saturating_sub(1)) as f64;
        self.stats.get_ops += billed_units;
        self.stats.api_requests += 1;
        self.stats.bytes_read += bytes as u64;
        let ready = if sharded && !groups.is_empty() {
            self.ensure_lanes(table);
            self.serve_read_shards(now, table, "batch_get", &groups)
        } else {
            let ready = self.reads.serve(now, units);
            self.obs.record(|p, ctx| {
                Span::new(ServiceKind::Kv, "batch_get", now, ready, ctx)
                    .bytes(bytes as u64)
                    .units(units)
                    .busy(self.reads.service_time(units))
                    .billed(p.idx_get * billed_units)
            });
            ready
        };
        Ok((items, ready))
    }

    fn stats(&self) -> KvStats {
        self.stats
    }

    fn set_faults(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.obs = recorder;
    }

    fn faults_active(&self) -> bool {
        self.faults.is_active()
    }

    fn peek_all(&self) -> Vec<(String, KvItem)> {
        let mut names: Vec<&String> = self.tables.keys().collect();
        names.sort();
        let mut out = Vec::new();
        for name in names {
            let mut hashes: Vec<&String> = self.tables[name].keys().collect();
            hashes.sort();
            for h in hashes {
                for item in self.tables[name][h].values() {
                    out.push((name.clone(), item.clone()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(hash: &str, range: &str, uri: &str, val: KvValue) -> KvItem {
        KvItem {
            hash_key: hash.into(),
            range_key: range.into(),
            attrs: vec![(uri.into(), vec![val])],
        }
    }

    #[test]
    fn put_then_get_by_hash_key() {
        let mut db = DynamoDb::default();
        db.ensure_table("idx");
        db.batch_put(
            SimTime::ZERO,
            "idx",
            vec![
                item("ename", "u1", "delacroix.xml", KvValue::S(String::new())),
                item("ename", "u2", "manet.xml", KvValue::S(String::new())),
                item("aid", "u3", "delacroix.xml", KvValue::S(String::new())),
            ],
        )
        .unwrap();
        let (items, _) = db.get(SimTime::ZERO, "idx", "ename").unwrap();
        assert_eq!(items.len(), 2);
        let (items, _) = db.get(SimTime::ZERO, "idx", "missing").unwrap();
        assert!(items.is_empty());
    }

    #[test]
    fn same_primary_key_replaces() {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        db.batch_put(
            SimTime::ZERO,
            "t",
            vec![item("k", "r", "a", KvValue::S("1".into()))],
        )
        .unwrap();
        db.batch_put(
            SimTime::ZERO,
            "t",
            vec![item("k", "r", "b", KvValue::S("22".into()))],
        )
        .unwrap();
        let (items, _) = db.get(SimTime::ZERO, "t", "k").unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].attrs[0].0, "b");
        // Storage reflects only the replacement item (+ one overhead).
        let st = db.stats();
        assert_eq!(st.raw_bytes, items[0].byte_size() as u64);
        assert_eq!(st.overhead_bytes, ITEM_OVERHEAD_BYTES);
    }

    #[test]
    fn binary_values_are_supported() {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        db.batch_put(
            SimTime::ZERO,
            "t",
            vec![item("k", "r", "doc", KvValue::B(vec![1, 2, 3]))],
        )
        .unwrap();
        let (items, _) = db.get(SimTime::ZERO, "t", "k").unwrap();
        assert!(items[0].attrs[0].1[0].is_binary());
    }

    #[test]
    fn limits_are_enforced() {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        // Oversized item.
        let big = item("k", "r", "doc", KvValue::B(vec![0; MAX_ITEM_BYTES + 1]));
        assert!(matches!(
            db.batch_put(SimTime::ZERO, "t", vec![big]),
            Err(KvError::ItemTooLarge { .. })
        ));
        // Oversized hash key.
        let long_key = item(&"k".repeat(3000), "r", "doc", KvValue::S(String::new()));
        assert!(matches!(
            db.batch_put(SimTime::ZERO, "t", vec![long_key]),
            Err(KvError::KeyTooLarge { .. })
        ));
        // Oversized batch.
        let many = (0..26)
            .map(|i| item("k", &format!("r{i}"), "doc", KvValue::S(String::new())))
            .collect();
        assert!(matches!(
            db.batch_put(SimTime::ZERO, "t", many),
            Err(KvError::BatchTooLarge { .. })
        ));
        // Missing table.
        assert!(matches!(
            db.get(SimTime::ZERO, "nope", "k"),
            Err(KvError::NoSuchTable(_))
        ));
    }

    #[test]
    fn billing_counts_capacity_units_not_batches() {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        let items: Vec<KvItem> = (0..25)
            .map(|i| item("k", &format!("r{i}"), "doc", KvValue::S(String::new())))
            .collect();
        db.batch_put(SimTime::ZERO, "t", items).unwrap();
        let st = db.stats();
        // 25 small items each bill the 1-unit per-item minimum, in one
        // API request.
        assert_eq!(st.put_ops, 25);
        assert_eq!(st.api_requests, 1);
        // A single 8 KB item bills by volume: ceil(0.05 + 8) = 9 units.
        let mut db2 = DynamoDb::default();
        db2.ensure_table("t");
        db2.batch_put(
            SimTime::ZERO,
            "t",
            vec![item("k", "r", "doc", KvValue::B(vec![0; 8192]))],
        )
        .unwrap();
        assert_eq!(db2.stats().put_ops, 9);
    }

    #[test]
    fn batching_never_changes_billed_write_units() {
        // The same 25 items, uploaded as one batch and one by one, must
        // consume identical billed capacity — batching may only save API
        // round trips. Mix sizes so several per-item ceils are fractional.
        let items: Vec<KvItem> = (0..25)
            .map(|i| {
                item(
                    "k",
                    &format!("r{i}"),
                    "doc",
                    KvValue::B(vec![0; (i * 700) % 9000]),
                )
            })
            .collect();
        let mut batched = DynamoDb::default();
        batched.ensure_table("t");
        batched
            .batch_put(SimTime::ZERO, "t", items.clone())
            .unwrap();
        let mut single = DynamoDb::default();
        single.ensure_table("t");
        for it in items {
            single.batch_put(SimTime::ZERO, "t", vec![it]).unwrap();
        }
        assert_eq!(batched.stats().put_ops, single.stats().put_ops);
        assert_eq!(batched.stats().api_requests, 1);
        assert_eq!(single.stats().api_requests, 25);
    }

    #[test]
    fn batching_never_changes_billed_read_units() {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        for i in 0..10 {
            db.batch_put(
                SimTime::ZERO,
                "t",
                vec![item(
                    &format!("k{i}"),
                    "r",
                    "d",
                    KvValue::B(vec![0; (i * 1500) % 12_000]),
                )],
            )
            .unwrap();
        }
        let keys: Vec<String> = (0..10).map(|i| format!("k{i}")).collect();
        let before = db.stats();
        db.batch_get(SimTime::ZERO, "t", &keys).unwrap();
        let batched_units = db.stats().get_ops - before.get_ops;
        let mid = db.stats();
        for k in &keys {
            db.get(SimTime::ZERO, "t", k).unwrap();
        }
        let single_units = db.stats().get_ops - mid.get_ops;
        assert_eq!(batched_units, single_units);
    }

    #[test]
    fn delete_bills_write_units_and_frees_storage() {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        // An 8 KB item bills ceil(0.05 + 8) = 9 units to write — and the
        // same 9 units to delete (DeleteItem is billed by the size of the
        // removed item).
        db.batch_put(
            SimTime::ZERO,
            "t",
            vec![item("k", "r", "doc", KvValue::B(vec![0; 8192]))],
        )
        .unwrap();
        let st = db.stats();
        assert_eq!(st.put_ops, 9);
        assert!(st.raw_bytes > 0);
        assert_eq!(st.overhead_bytes, ITEM_OVERHEAD_BYTES);
        let done = db
            .batch_delete(SimTime(3), "t", &[("k".into(), "r".into())])
            .unwrap();
        assert!(done > SimTime(3));
        let st = db.stats();
        assert_eq!(st.put_ops, 18, "delete bills like the put did");
        assert_eq!(st.raw_bytes, 0);
        assert_eq!(st.overhead_bytes, 0);
        assert!(db.peek_all().is_empty());
    }

    #[test]
    fn deleting_a_missing_key_bills_the_minimum_and_is_idempotent() {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        db.batch_delete(SimTime::ZERO, "t", &[("k".into(), "r".into())])
            .unwrap();
        db.batch_delete(SimTime::ZERO, "t", &[("k".into(), "r".into())])
            .unwrap();
        let st = db.stats();
        assert_eq!(st.put_ops, 2, "each attempt bills one write unit");
        assert_eq!(st.api_requests, 2);
        assert_eq!(st.raw_bytes, 0);
        assert_eq!(st.overhead_bytes, 0);
        // Limits still apply.
        let many: Vec<(String, String)> = (0..26).map(|i| ("k".into(), format!("r{i}"))).collect();
        assert!(matches!(
            db.batch_delete(SimTime::ZERO, "t", &many),
            Err(KvError::BatchTooLarge { .. })
        ));
        assert!(matches!(
            db.batch_delete(SimTime::ZERO, "nope", &[("k".into(), "r".into())]),
            Err(KvError::NoSuchTable(_))
        ));
    }

    #[test]
    fn throttled_deletes_leave_items_in_place() {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        db.batch_put(
            SimTime::ZERO,
            "t",
            vec![item("k", "r", "d", KvValue::S(String::new()))],
        )
        .unwrap();
        db.set_faults(FaultInjector::new(1.0, 17)); // clamped to 0.95
        let mut throttles = 0;
        for _ in 0..50 {
            match db.batch_delete(SimTime(55), "t", &[("k".into(), "r".into())]) {
                Ok(_) => {}
                Err(KvError::Throttled { available_at }) => {
                    assert!(available_at > SimTime(55));
                    throttles += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(throttles > 0, "a 95% rate throttles within 50 calls");
        assert_eq!(db.stats().throttled, throttles);
        assert!(db.peek_all().is_empty(), "a non-throttled attempt landed");
    }

    #[test]
    fn saturation_grows_completion_times() {
        // A provisioned write rate of 100 units/s given 1000 small items
        // must take roughly a second (capacity + per-request overhead).
        let mut db = DynamoDb::new(DynamoConfig {
            write_units_per_sec: 100.0,
            ..Default::default()
        });
        db.ensure_table("t");
        let mut last = SimTime::ZERO;
        for i in 0..1000 {
            last = db
                .batch_put(
                    SimTime::ZERO,
                    "t",
                    vec![item("k", &format!("r{i}"), "d", KvValue::S(String::new()))],
                )
                .unwrap();
        }
        assert!(last.as_secs_f64() > 0.8, "took {}", last.as_secs_f64());
        // Larger items consume proportionally more capacity.
        let mut db2 = DynamoDb::new(DynamoConfig {
            write_units_per_sec: 100.0,
            ..Default::default()
        });
        db2.ensure_table("t");
        let mut last2 = SimTime::ZERO;
        for i in 0..1000 {
            last2 = db2
                .batch_put(
                    SimTime::ZERO,
                    "t",
                    vec![item("k", &format!("r{i}"), "d", KvValue::B(vec![0; 2048]))],
                )
                .unwrap();
        }
        assert!(last2.micros() > 5 * last.micros());
    }

    #[test]
    fn throttled_requests_bill_a_unit_and_leave_data_untouched() {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        db.set_faults(FaultInjector::new(1.0, 11)); // clamped to 0.95
        let mut throttles = 0;
        for i in 0..50 {
            match db.batch_put(
                SimTime(55),
                "t",
                vec![item("k", &format!("r{i}"), "d", KvValue::S(String::new()))],
            ) {
                Ok(_) => {}
                Err(KvError::Throttled { available_at }) => {
                    assert!(available_at > SimTime(55));
                    throttles += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(throttles > 0, "a 95% rate throttles within 50 calls");
        let st = db.stats();
        assert_eq!(st.throttled, throttles);
        assert_eq!(st.api_requests, 50);
        // Only the successful puts landed.
        assert_eq!(db.peek_all().len(), 50 - throttles as usize);
    }

    #[test]
    fn peek_all_is_sorted_and_free() {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        db.batch_put(
            SimTime::ZERO,
            "t",
            vec![
                item("b", "r", "d", KvValue::S(String::new())),
                item("a", "r2", "d", KvValue::S(String::new())),
                item("a", "r1", "d", KvValue::S(String::new())),
            ],
        )
        .unwrap();
        let before = db.stats();
        let all = db.peek_all();
        assert_eq!(db.stats(), before, "peek_all must not bill anything");
        let keys: Vec<(String, String)> = all
            .iter()
            .map(|(_, i)| (i.hash_key.clone(), i.range_key.clone()))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("a".into(), "r1".into()),
                ("a".into(), "r2".into()),
                ("b".into(), "r".into()),
            ]
        );
    }

    #[test]
    fn batch_get_covers_many_keys_in_one_request() {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        for i in 0..5 {
            db.batch_put(
                SimTime::ZERO,
                "t",
                vec![item(&format!("k{i}"), "r", "d", KvValue::S(String::new()))],
            )
            .unwrap();
        }
        let keys: Vec<String> = (0..5).map(|i| format!("k{i}")).collect();
        let before = db.stats().api_requests;
        let (items, _) = db.batch_get(SimTime::ZERO, "t", &keys).unwrap();
        assert_eq!(items.len(), 5);
        assert_eq!(db.stats().api_requests, before + 1);
        // Five near-empty keys each bill the 1-unit per-key minimum.
        assert_eq!(db.stats().get_ops, 5);
    }

    /// A deterministic pseudo-random byte count for property-style tests
    /// (no host randomness allowed in the simulation crates).
    fn mix(seed: u64, i: u64) -> usize {
        let mut x = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(i.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        x ^= x >> 31;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 29;
        (x % 10_000) as usize
    }

    #[test]
    fn batch_get_billing_is_partition_invariant() {
        // Property: however a key set is partitioned into batch_get
        // calls, the billed read units are identical — the per-key ceil
        // (min 1) makes billing a pure per-key function. This pins the
        // audited `read_units(bytes) + 0.25·(keys−1)` aggregate as the
        // *service-time* side only; billing never uses it.
        for seed in 0..4u64 {
            let populate = |db: &mut DynamoDb| {
                db.ensure_table("t");
                for i in 0..12u64 {
                    db.batch_put(
                        SimTime::ZERO,
                        "t",
                        vec![item(
                            &format!("k{i}"),
                            "r",
                            "d",
                            KvValue::B(vec![0; mix(seed, i)]),
                        )],
                    )
                    .unwrap();
                }
            };
            let keys: Vec<String> = (0..12).map(|i| format!("k{i}")).collect();
            // One call with all keys.
            let mut whole = DynamoDb::default();
            populate(&mut whole);
            let base = whole.stats().get_ops;
            whole.batch_get(SimTime::ZERO, "t", &keys).unwrap();
            let whole_units = whole.stats().get_ops - base;
            // A seed-dependent split into two uneven calls.
            let cut = 1 + mix(seed, 99) % 10;
            let mut split = DynamoDb::default();
            populate(&mut split);
            let base = split.stats().get_ops;
            split.batch_get(SimTime::ZERO, "t", &keys[..cut]).unwrap();
            split.batch_get(SimTime::ZERO, "t", &keys[cut..]).unwrap();
            assert_eq!(split.stats().get_ops - base, whole_units, "seed {seed}");
            // Fully unbatched singles.
            let mut singles = DynamoDb::default();
            populate(&mut singles);
            let base = singles.stats().get_ops;
            for k in &keys {
                singles.get(SimTime::ZERO, "t", k).unwrap();
            }
            assert_eq!(singles.stats().get_ops - base, whole_units, "seed {seed}");
        }
    }

    #[test]
    fn batch_get_service_units_decompose_per_key() {
        // The audited service-time aggregate read_units(B) + 0.25·(k−1)
        // equals the sum of per-key fractional units Σ (0.25 + b_k/8192)
        // exactly — the identity the sharded store relies on to split a
        // batch across shards without changing total service demand.
        for k in [1usize, 2, 7, 100] {
            let total_bytes: usize = (0..k).map(|i| mix(7, i as u64)).sum();
            let aggregate = DynamoDb::read_units(total_bytes) + 0.25 * (k.saturating_sub(1)) as f64;
            let per_key: f64 = (0..k).map(|i| DynamoDb::read_units(mix(7, i as u64))).sum();
            assert!(
                (aggregate - per_key).abs() < 1e-9,
                "k={k}: {aggregate} vs {per_key}"
            );
        }
    }

    fn shard_fixture(plan: ShardPlan) -> DynamoDb {
        let mut db = DynamoDb::default();
        db.set_shard_plan(plan);
        db.ensure_table("t");
        db
    }

    #[test]
    fn sharding_preserves_contents_billing_and_answers() {
        let items: Vec<KvItem> = (0..20)
            .map(|i| {
                item(
                    &format!("k{}", i % 7),
                    &format!("r{i}"),
                    "d",
                    KvValue::B(vec![0; mix(3, i)]),
                )
            })
            .collect();
        let mut flat = shard_fixture(ShardPlan::single());
        let mut sharded = shard_fixture(ShardPlan::with_hot_keys(3, ["k0", "k1"]));
        for chunk in items.chunks(5) {
            flat.batch_put(SimTime::ZERO, "t", chunk.to_vec()).unwrap();
            sharded
                .batch_put(SimTime::ZERO, "t", chunk.to_vec())
                .unwrap();
        }
        let keys: Vec<String> = (0..7).map(|i| format!("k{i}")).collect();
        let (a, _) = flat.batch_get(SimTime::ZERO, "t", &keys).unwrap();
        let (b, _) = sharded.batch_get(SimTime::ZERO, "t", &keys).unwrap();
        assert_eq!(a, b, "answers are routing-independent");
        flat.batch_delete(SimTime::ZERO, "t", &[("k0".into(), "r0".into())])
            .unwrap();
        sharded
            .batch_delete(SimTime::ZERO, "t", &[("k0".into(), "r0".into())])
            .unwrap();
        assert_eq!(flat.stats(), sharded.stats(), "billing is plan-blind");
        assert_eq!(flat.peek_all(), sharded.peek_all());
    }

    #[test]
    fn sharded_spans_carry_shard_ids() {
        use crate::pricing::PriceTable;
        let mut db = shard_fixture(ShardPlan::with_hot_keys(2, ["hot"]));
        let rec = Recorder::enabled(PriceTable::default());
        db.set_recorder(rec.clone());
        db.batch_put(
            SimTime::ZERO,
            "t",
            vec![
                item("hot", "r1", "d", KvValue::S(String::new())),
                item("cold-a", "r2", "d", KvValue::S(String::new())),
            ],
        )
        .unwrap();
        db.get(SimTime::ZERO, "t", "hot").unwrap();
        let spans = rec.spans();
        let put_shards: Vec<Option<usize>> = spans
            .iter()
            .filter(|s| s.op == "batch_put")
            .map(|s| s.shard)
            .collect();
        assert_eq!(put_shards.len(), 2, "one span per touched shard");
        assert!(put_shards.contains(&Some(2)), "hot key owns shard 2");
        let get_span = spans.iter().find(|s| s.op == "get").unwrap();
        assert_eq!(get_span.shard, Some(2));
        // Unsharded spans stay untagged.
        let mut flat = DynamoDb::default();
        flat.ensure_table("t");
        let rec2 = Recorder::enabled(PriceTable::default());
        flat.set_recorder(rec2.clone());
        flat.batch_put(
            SimTime::ZERO,
            "t",
            vec![item("k", "r", "d", KvValue::S(String::new()))],
        )
        .unwrap();
        assert!(rec2.spans().iter().all(|s| s.shard.is_none()));
    }

    #[test]
    fn a_hot_shard_saturates_alone() {
        // 100 writes to the hot key and 1 to a cold key: the hot shard's
        // queue stretches while the cold shard answers at first-request
        // speed — per-shard provisioning isolates the victim.
        let cfg = DynamoConfig {
            write_units_per_sec: 100.0,
            ..Default::default()
        };
        let mut db = DynamoDb::new(cfg);
        db.set_shard_plan(ShardPlan::with_hot_keys(1, ["hot"]));
        db.ensure_table("t");
        let mut hot_done = SimTime::ZERO;
        for i in 0..100 {
            hot_done = db
                .batch_put(
                    SimTime::ZERO,
                    "t",
                    vec![item(
                        "hot",
                        &format!("r{i}"),
                        "d",
                        KvValue::B(vec![0; 2048]),
                    )],
                )
                .unwrap();
        }
        let cold_done = db
            .batch_put(
                SimTime::ZERO,
                "t",
                vec![item("cold", "r", "d", KvValue::B(vec![0; 2048]))],
            )
            .unwrap();
        assert!(
            hot_done.micros() > 10 * cold_done.micros(),
            "hot {hot_done:?} vs cold {cold_done:?}"
        );
    }

    #[test]
    fn throttles_on_a_sharded_store_tag_the_routed_shard() {
        use crate::pricing::PriceTable;
        let mut db = shard_fixture(ShardPlan::with_hot_keys(1, ["hot"]));
        let rec = Recorder::enabled(PriceTable::default());
        db.set_recorder(rec.clone());
        db.set_faults(FaultInjector::new(1.0, 5)); // clamped to 0.95
        let mut tagged = 0;
        for _ in 0..50 {
            if db.get(SimTime::ZERO, "t", "hot").is_err() {
                tagged += 1;
            }
        }
        assert!(tagged > 0);
        let throttle_shards: Vec<Option<usize>> = rec
            .spans()
            .iter()
            .filter(|s| s.outcome == Outcome::Throttled)
            .map(|s| s.shard)
            .collect();
        assert_eq!(throttle_shards.len() as u64, tagged);
        assert!(throttle_shards.iter().all(|&s| s == Some(1)));
    }
}
