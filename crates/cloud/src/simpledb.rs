//! The simulated SimpleDB key-value store — the index backend of the
//! paper's preliminary work \[8\], kept as a baseline for the Tables 7–8
//! comparison.
//!
//! The two modelled handicaps relative to DynamoDB, which the paper
//! identifies as the source of its 1–2 order-of-magnitude disadvantage
//! (Section 8.4):
//!
//! * **string-only attribute values of at most 1 KB** — structural-ID
//!   lists cannot be stored as compact binary blobs; the index layer must
//!   base64-encode and chunk them into many small values (and therefore
//!   many more items and requests);
//! * **lower throughput and higher per-request latency** — SimpleDB
//!   processes requests more slowly and tolerates much less concurrency
//!   (the paper: "DynamoDB has a shorter response time and can handle more
//!   concurrent requests than SimpleDB").

use crate::clock::{SimDuration, SimTime};
use crate::fault::FaultInjector;
use crate::kv::{KvError, KvItem, KvProfile, KvStats, KvStore};
use crate::obs::{Outcome, Recorder, ServiceKind, Span};
use crate::service::ServiceQueue;
use std::collections::{BTreeMap, HashMap};

/// Maximum attribute-value size (strings only).
pub const MAX_VALUE_BYTES: usize = 1024;
/// Maximum attribute-value pairs per item.
pub const MAX_ATTRS_PER_ITEM: usize = 256;
/// Items per batch put.
pub const BATCH_PUT_LIMIT: usize = 25;
/// SimpleDB has no batch get; one key per request.
pub const BATCH_GET_LIMIT: usize = 1;
/// Storage overhead billed per attribute-value pair (45 bytes per name
/// plus per value, per the SimpleDB pricing formula).
pub const ATTR_OVERHEAD_BYTES: u64 = 45;

/// Service-rate parameters.
#[derive(Debug, Clone)]
pub struct SimpleDbConfig {
    /// Aggregate write throughput, bytes/second.
    pub write_bytes_per_sec: f64,
    /// Aggregate read throughput, bytes/second.
    pub read_bytes_per_sec: f64,
    /// Per-request latency.
    pub latency: SimDuration,
}

impl Default for SimpleDbConfig {
    fn default() -> Self {
        // Roughly 1/20 of the DynamoDB defaults, with 5× the latency —
        // producing the one-to-two order-of-magnitude indexing gap the
        // paper measured (its Table 7: 196 ms/MB vs 7491 ms/MB for LU).
        SimpleDbConfig {
            write_bytes_per_sec: 384.0 * 1024.0,
            read_bytes_per_sec: 1536.0 * 1024.0,
            latency: SimDuration::from_millis(60),
        }
    }
}

type Domain = HashMap<String, BTreeMap<String, KvItem>>;

/// The simulated SimpleDB service.
pub struct SimpleDb {
    domains: HashMap<String, Domain>,
    stats: KvStats,
    writes: ServiceQueue,
    reads: ServiceQueue,
    faults: FaultInjector,
    obs: Recorder,
}

impl SimpleDb {
    /// Creates a store with the given service parameters.
    pub fn new(config: SimpleDbConfig) -> SimpleDb {
        SimpleDb {
            domains: HashMap::new(),
            stats: KvStats::default(),
            writes: ServiceQueue::new(
                SimDuration::from_millis(4),
                config.write_bytes_per_sec,
                config.latency,
            ),
            reads: ServiceQueue::new(
                SimDuration::from_millis(4),
                config.read_bytes_per_sec,
                config.latency,
            ),
            faults: FaultInjector::off(),
            obs: Recorder::off(),
        }
    }

    /// Rolls the fault injector; a throttled attempt (SimpleDB's
    /// `ServiceUnavailable`) still bills one box-usage operation and one
    /// API round trip, and its failure response arrives after the request
    /// latency.
    fn maybe_throttle(&mut self, now: SimTime, is_write: bool) -> Result<(), KvError> {
        if self.faults.roll() {
            self.stats.throttled += 1;
            self.stats.api_requests += 1;
            let queue = if is_write { &self.writes } else { &self.reads };
            let available_at = now + queue.latency;
            if is_write {
                self.stats.put_ops += 1;
            } else {
                self.stats.get_ops += 1;
            }
            self.obs.record(|p, ctx| {
                let (op, price) = if is_write {
                    ("put", p.idx_put)
                } else {
                    ("get", p.idx_get)
                };
                Span::new(ServiceKind::Kv, op, now, available_at, ctx)
                    .units(1.0)
                    .billed(price)
                    .outcome(Outcome::Throttled)
            });
            return Err(KvError::Throttled { available_at });
        }
        Ok(())
    }

    fn validate(&self, item: &KvItem) -> Result<(), KvError> {
        let attr_count: usize = item.attrs.iter().map(|(_, vs)| vs.len()).sum();
        if attr_count > MAX_ATTRS_PER_ITEM {
            return Err(KvError::TooManyAttributes {
                limit: MAX_ATTRS_PER_ITEM,
                got: attr_count,
            });
        }
        for (_, vs) in &item.attrs {
            for v in vs {
                if v.is_binary() {
                    return Err(KvError::BinaryNotSupported);
                }
                if v.len() > MAX_VALUE_BYTES {
                    return Err(KvError::ValueTooLarge {
                        limit: MAX_VALUE_BYTES,
                        got: v.len(),
                    });
                }
            }
        }
        if item.hash_key.len() > MAX_VALUE_BYTES {
            return Err(KvError::KeyTooLarge {
                limit: MAX_VALUE_BYTES,
                got: item.hash_key.len(),
            });
        }
        Ok(())
    }
}

impl Default for SimpleDb {
    fn default() -> Self {
        Self::new(SimpleDbConfig::default())
    }
}

impl KvStore for SimpleDb {
    fn profile(&self) -> KvProfile {
        KvProfile {
            name: "SimpleDB",
            supports_binary: false,
            max_value_bytes: MAX_VALUE_BYTES,
            max_item_bytes: MAX_VALUE_BYTES * MAX_ATTRS_PER_ITEM,
            max_attrs_per_item: MAX_ATTRS_PER_ITEM,
            batch_put_limit: BATCH_PUT_LIMIT,
            batch_get_limit: BATCH_GET_LIMIT,
        }
    }

    fn ensure_table(&mut self, table: &str) {
        self.domains.entry(table.to_string()).or_default();
    }

    fn batch_put(
        &mut self,
        now: SimTime,
        table: &str,
        items: Vec<KvItem>,
    ) -> Result<SimTime, KvError> {
        if items.len() > BATCH_PUT_LIMIT {
            return Err(KvError::BatchTooLarge {
                limit: BATCH_PUT_LIMIT,
                got: items.len(),
            });
        }
        for item in &items {
            self.validate(item)?;
        }
        if !self.domains.contains_key(table) {
            return Err(KvError::NoSuchTable(table.to_string()));
        }
        self.maybe_throttle(now, true)?;
        let d = self.domains.get_mut(table).expect("checked above");
        let mut bytes = 0usize;
        let mut total_attr_values = 0u64;
        let mut raw_delta: i64 = 0;
        let mut ovh_delta: i64 = 0;
        for item in items {
            bytes += item.byte_size();
            let size = item.byte_size() as i64;
            let attr_values: i64 = item
                .attrs
                .iter()
                .map(|(_, vs)| vs.len() as i64)
                .sum::<i64>();
            total_attr_values += attr_values as u64;
            let rows = d.entry(item.hash_key.clone()).or_default();
            if let Some(old) = rows.insert(item.range_key.clone(), item) {
                raw_delta -= old.byte_size() as i64;
                ovh_delta -= ATTR_OVERHEAD_BYTES as i64
                    * old.attrs.iter().map(|(_, vs)| vs.len() as i64).sum::<i64>();
            }
            raw_delta += size;
            ovh_delta += ATTR_OVERHEAD_BYTES as i64 * attr_values;
        }
        self.stats.raw_bytes = (self.stats.raw_bytes as i64 + raw_delta) as u64;
        self.stats.overhead_bytes = (self.stats.overhead_bytes as i64 + ovh_delta) as u64;
        // SimpleDB's box-usage billing scales with the attribute-value
        // pairs written, not the item count — the billing-side half of the
        // Tables 7–8 amplification (chunked values each pay their way).
        self.stats.put_ops += total_attr_values;
        self.stats.api_requests += 1;
        let ready = self.writes.serve(now, bytes as f64);
        self.obs.record(|p, ctx| {
            Span::new(ServiceKind::Kv, "batch_put", now, ready, ctx)
                .bytes(bytes as u64)
                .units(total_attr_values as f64)
                .busy(self.writes.service_time(bytes as f64))
                .billed(p.idx_put * total_attr_values)
        });
        Ok(ready)
    }

    fn batch_delete(
        &mut self,
        now: SimTime,
        table: &str,
        keys: &[(String, String)],
    ) -> Result<SimTime, KvError> {
        if keys.len() > BATCH_PUT_LIMIT {
            return Err(KvError::BatchTooLarge {
                limit: BATCH_PUT_LIMIT,
                got: keys.len(),
            });
        }
        if !self.domains.contains_key(table) {
            return Err(KvError::NoSuchTable(table.to_string()));
        }
        self.maybe_throttle(now, true)?;
        let d = self.domains.get_mut(table).expect("checked above");
        let mut bytes = 0usize;
        let mut billed = 0u64;
        let mut raw_delta: i64 = 0;
        let mut ovh_delta: i64 = 0;
        for (hash, range) in keys {
            let removed = match d.get_mut(hash) {
                Some(rows) => {
                    let old = rows.remove(range);
                    if rows.is_empty() {
                        d.remove(hash);
                    }
                    old
                }
                None => None,
            };
            // DeleteAttributes box usage scales with the attribute-value
            // pairs removed, mirroring batch_put; an absent key still
            // bills the one-operation minimum, keeping retried deletes
            // idempotent but never free.
            match &removed {
                Some(old) => {
                    let attr_values: i64 =
                        old.attrs.iter().map(|(_, vs)| vs.len() as i64).sum::<i64>();
                    bytes += old.byte_size();
                    raw_delta -= old.byte_size() as i64;
                    ovh_delta -= ATTR_OVERHEAD_BYTES as i64 * attr_values;
                    billed += (attr_values as u64).max(1);
                }
                None => billed += 1,
            }
        }
        self.stats.raw_bytes = (self.stats.raw_bytes as i64 + raw_delta) as u64;
        self.stats.overhead_bytes = (self.stats.overhead_bytes as i64 + ovh_delta) as u64;
        self.stats.put_ops += billed;
        self.stats.api_requests += 1;
        let ready = self.writes.serve(now, bytes as f64);
        self.obs.record(|p, ctx| {
            Span::new(ServiceKind::Kv, "batch_delete", now, ready, ctx)
                .units(billed as f64)
                .busy(self.writes.service_time(bytes as f64))
                .billed(p.idx_put * billed)
        });
        Ok(ready)
    }

    fn get(
        &mut self,
        now: SimTime,
        table: &str,
        hash_key: &str,
    ) -> Result<(Vec<KvItem>, SimTime), KvError> {
        if !self.domains.contains_key(table) {
            return Err(KvError::NoSuchTable(table.to_string()));
        }
        self.maybe_throttle(now, false)?;
        let d = self.domains.get(table).expect("checked above");
        let items: Vec<KvItem> = d
            .get(hash_key)
            .map(|rows| rows.values().cloned().collect())
            .unwrap_or_default();
        let bytes: usize = items.iter().map(KvItem::byte_size).sum();
        self.stats.get_ops += 1;
        self.stats.api_requests += 1;
        self.stats.bytes_read += bytes as u64;
        let ready = self.reads.serve(now, bytes as f64);
        self.obs.record(|p, ctx| {
            Span::new(ServiceKind::Kv, "get", now, ready, ctx)
                .bytes(bytes as u64)
                .units(1.0)
                .busy(self.reads.service_time(bytes as f64))
                .billed(p.idx_get)
        });
        Ok((items, ready))
    }

    fn batch_get(
        &mut self,
        now: SimTime,
        table: &str,
        hash_keys: &[String],
    ) -> Result<(Vec<KvItem>, SimTime), KvError> {
        // No native batch get: issue sequential gets.
        let mut items = Vec::new();
        let mut ready = now;
        for k in hash_keys {
            let (mut batch, t) = self.get(ready, table, k)?;
            items.append(&mut batch);
            ready = t;
        }
        Ok((items, ready))
    }

    fn stats(&self) -> KvStats {
        self.stats
    }

    fn set_faults(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.obs = recorder;
    }

    fn faults_active(&self) -> bool {
        self.faults.is_active()
    }

    fn peek_all(&self) -> Vec<(String, KvItem)> {
        let mut names: Vec<&String> = self.domains.keys().collect();
        names.sort();
        let mut out = Vec::new();
        for name in names {
            let mut hashes: Vec<&String> = self.domains[name].keys().collect();
            hashes.sort();
            for h in hashes {
                for item in self.domains[name][h].values() {
                    out.push((name.clone(), item.clone()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KvValue;

    fn item(hash: &str, range: &str, val: KvValue) -> KvItem {
        KvItem {
            hash_key: hash.into(),
            range_key: range.into(),
            attrs: vec![("doc.xml".into(), vec![val])],
        }
    }

    #[test]
    fn rejects_binary_values() {
        let mut db = SimpleDb::default();
        db.ensure_table("t");
        let err = db
            .batch_put(
                SimTime::ZERO,
                "t",
                vec![item("k", "r", KvValue::B(vec![1]))],
            )
            .unwrap_err();
        assert_eq!(err, KvError::BinaryNotSupported);
    }

    #[test]
    fn rejects_values_over_1kb() {
        let mut db = SimpleDb::default();
        db.ensure_table("t");
        let err = db
            .batch_put(
                SimTime::ZERO,
                "t",
                vec![item("k", "r", KvValue::S("x".repeat(1025)))],
            )
            .unwrap_err();
        assert!(matches!(err, KvError::ValueTooLarge { limit: 1024, .. }));
    }

    #[test]
    fn rejects_too_many_attribute_values() {
        let mut db = SimpleDb::default();
        db.ensure_table("t");
        let vals: Vec<KvValue> = (0..257).map(|i| KvValue::S(format!("v{i}"))).collect();
        let it = KvItem {
            hash_key: "k".into(),
            range_key: "r".into(),
            attrs: vec![("a".into(), vals)],
        };
        let err = db.batch_put(SimTime::ZERO, "t", vec![it]).unwrap_err();
        assert!(matches!(err, KvError::TooManyAttributes { limit: 256, .. }));
    }

    #[test]
    fn accepts_and_returns_string_values() {
        let mut db = SimpleDb::default();
        db.ensure_table("t");
        db.batch_put(
            SimTime::ZERO,
            "t",
            vec![item("ename", "r1", KvValue::S("p1".into()))],
        )
        .unwrap();
        db.batch_put(
            SimTime::ZERO,
            "t",
            vec![item("ename", "r2", KvValue::S("p2".into()))],
        )
        .unwrap();
        let (items, _) = db.get(SimTime::ZERO, "t", "ename").unwrap();
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn slower_than_dynamodb_for_equal_work() {
        use crate::dynamodb::DynamoDb;
        use crate::kv::KvStore as _;
        let mut sdb = SimpleDb::default();
        let mut ddb = DynamoDb::default();
        sdb.ensure_table("t");
        ddb.ensure_table("t");
        let mk = |i: usize| item("k", &format!("r{i}"), KvValue::S("x".repeat(500)));
        let mut t_s = SimTime::ZERO;
        let mut t_d = SimTime::ZERO;
        for i in 0..200 {
            t_s = sdb.batch_put(SimTime::ZERO, "t", vec![mk(i)]).unwrap();
            t_d = ddb.batch_put(SimTime::ZERO, "t", vec![mk(i)]).unwrap();
        }
        assert!(
            t_s.micros() > 10 * t_d.micros(),
            "SimpleDB {} vs DynamoDB {}",
            t_s.as_secs_f64(),
            t_d.as_secs_f64()
        );
    }

    #[test]
    fn batch_get_issues_sequential_requests() {
        let mut db = SimpleDb::default();
        db.ensure_table("t");
        db.batch_put(
            SimTime::ZERO,
            "t",
            vec![item("a", "r", KvValue::S(String::new()))],
        )
        .unwrap();
        db.batch_put(
            SimTime::ZERO,
            "t",
            vec![item("b", "r", KvValue::S(String::new()))],
        )
        .unwrap();
        let before = db.stats().api_requests;
        let (_, _) = db
            .batch_get(SimTime::ZERO, "t", &["a".to_string(), "b".to_string()])
            .unwrap();
        assert_eq!(db.stats().api_requests, before + 2);
    }

    #[test]
    fn throttled_requests_are_billed_but_store_nothing() {
        let mut db = SimpleDb::default();
        db.ensure_table("t");
        db.set_faults(FaultInjector::new(1.0, 13)); // clamped to 0.95
        let mut throttles = 0;
        for i in 0..50 {
            match db.batch_put(
                SimTime(99),
                "t",
                vec![item("k", &format!("r{i}"), KvValue::S(String::new()))],
            ) {
                Ok(_) => {}
                Err(KvError::Throttled { available_at }) => {
                    assert!(available_at > SimTime(99));
                    throttles += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(throttles > 0, "a 95% rate throttles within 50 calls");
        let st = db.stats();
        assert_eq!(st.throttled, throttles);
        assert_eq!(st.api_requests, 50);
        assert_eq!(db.peek_all().len(), 50 - throttles as usize);
    }

    #[test]
    fn delete_bills_per_attribute_value_and_frees_overhead() {
        let mut db = SimpleDb::default();
        db.ensure_table("t");
        let it = KvItem {
            hash_key: "k".into(),
            range_key: "r".into(),
            attrs: vec![(
                "a".into(),
                vec![KvValue::S("1".into()), KvValue::S("2".into())],
            )],
        };
        db.batch_put(SimTime::ZERO, "t", vec![it]).unwrap();
        let before = db.stats();
        assert_eq!(before.put_ops, 2);
        assert_eq!(before.overhead_bytes, 2 * ATTR_OVERHEAD_BYTES);
        db.batch_delete(SimTime::ZERO, "t", &[("k".into(), "r".into())])
            .unwrap();
        let st = db.stats();
        assert_eq!(st.put_ops, 4, "two attribute-values billed to remove");
        assert_eq!(st.raw_bytes, 0);
        assert_eq!(st.overhead_bytes, 0);
        assert!(db.peek_all().is_empty());
        // A missing key bills the one-operation minimum and stays a success.
        db.batch_delete(SimTime::ZERO, "t", &[("k".into(), "r".into())])
            .unwrap();
        assert_eq!(db.stats().put_ops, 5);
    }

    #[test]
    fn storage_overhead_is_per_attribute_value() {
        let mut db = SimpleDb::default();
        db.ensure_table("t");
        let it = KvItem {
            hash_key: "k".into(),
            range_key: "r".into(),
            attrs: vec![(
                "a".into(),
                vec![KvValue::S("1".into()), KvValue::S("2".into())],
            )],
        };
        db.batch_put(SimTime::ZERO, "t", vec![it]).unwrap();
        assert_eq!(db.stats().overhead_bytes, 2 * ATTR_OVERHEAD_BYTES);
    }
}
