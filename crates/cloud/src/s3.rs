//! The simulated file store (Amazon S3 in the paper's deployment).
//!
//! S3's role in the architecture is simple: a durable, highly-available
//! blob store holding whole XML documents and query results. It scales
//! horizontally, so requests are *not* queued against a global capacity;
//! each request pays a latency floor plus transfer time at a per-connection
//! bandwidth (paper Section 6 notes bucket count does not affect
//! performance, so one namespace is as good as many).

use crate::clock::{SimDuration, SimTime};
use crate::fault::FaultInjector;
use crate::obs::{Outcome, Recorder, ServiceKind, Span};
use crate::service::ServiceQueue;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Errors from the file store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum S3Error {
    /// `get` of an object that does not exist.
    NoSuchKey { bucket: String, key: String },
    /// Operation on a bucket that was never created.
    NoSuchBucket(String),
    /// `503 SlowDown` — the request was throttled (retryable); the failure
    /// response arrives at `available_at`. The request was still billed.
    SlowDown {
        /// When the caller learns about the failure.
        available_at: SimTime,
    },
}

impl fmt::Display for S3Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            S3Error::NoSuchKey { bucket, key } => write!(f, "no such key: {bucket}/{key}"),
            S3Error::NoSuchBucket(b) => write!(f, "no such bucket: {b}"),
            S3Error::SlowDown { available_at } => {
                write!(f, "503 SlowDown (response at {:?})", available_at)
            }
        }
    }
}

impl std::error::Error for S3Error {}

/// A compiled predicate the store can evaluate server-side (the
/// S3-Select analog). The store stays format-agnostic: it hands the
/// predicate the raw object bytes and ships back whatever bytes the
/// predicate filters out of them.
pub trait ObjectPredicate {
    /// Evaluates against the raw object bytes, returning the filtered
    /// result bytes (empty when nothing matches).
    fn filter(&self, bytes: &[u8]) -> Vec<u8>;
}

/// Server-side scan rate: storage-local filtering runs at storage
/// bandwidth, well above the 25 MB/s per-connection transfer pipe.
const SCAN_BYTES_PER_SEC: f64 = 100.0 * 1024.0 * 1024.0;

/// Usage counters (feed the `ST*` components of the cost model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct S3Stats {
    /// Put requests (billed `STput$` each).
    pub put_requests: u64,
    /// Get requests (billed `STget$` each).
    pub get_requests: u64,
    /// Server-side scan requests (billed `STget$` each, plus
    /// `STscan$_{GB}` on the bytes scanned).
    pub scan_requests: u64,
    /// Bytes uploaded.
    pub bytes_in: u64,
    /// Bytes downloaded.
    pub bytes_out: u64,
    /// Object bytes scanned server-side (billed `STscan$_{GB}`).
    pub bytes_scanned: u64,
    /// Filtered bytes scans returned (billed `egress$_{GB}`; also
    /// counted in `bytes_out` — they leave the storage tier).
    pub scan_returned_bytes: u64,
    /// Bytes currently stored (the `s(D)` of the storage cost).
    pub stored_bytes: u64,
    /// Delete requests. Counted for observability but billed nothing:
    /// S3 DELETEs are free of request charges.
    pub delete_requests: u64,
    /// Requests rejected with `SlowDown` by the fault injector (each one
    /// billed as a request but moving no data).
    pub throttled: u64,
}

/// The simulated file store.
pub struct S3 {
    buckets: HashMap<String, HashMap<String, Arc<Vec<u8>>>>,
    stats: S3Stats,
    transfer: ServiceQueue,
    faults: FaultInjector,
    obs: Recorder,
}

impl S3 {
    /// Creates a store with default service parameters: 12 ms request
    /// latency, 25 MB/s per-connection transfer.
    pub fn new() -> S3 {
        S3 {
            buckets: HashMap::new(),
            stats: S3Stats::default(),
            transfer: ServiceQueue::new(
                SimDuration::from_millis(3),
                25.0 * 1024.0 * 1024.0,
                SimDuration::from_millis(12),
            ),
            faults: FaultInjector::off(),
            obs: Recorder::off(),
        }
    }

    /// Installs a fault injector (replacing any previous one).
    pub fn set_faults(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// Installs a span recorder (replacing any previous one).
    pub fn set_recorder(&mut self, obs: Recorder) {
        self.obs = obs;
    }

    /// Records a throttled request span (billed, no data moved).
    fn record_throttle(&self, now: SimTime, op: &'static str) {
        let end = now + self.transfer.latency;
        self.obs.record(|p, ctx| {
            // DELETEs carry no request charge even when throttled.
            let billed = match op {
                "put" => p.st_put,
                "delete" => crate::money::Money::ZERO,
                _ => p.st_get,
            };
            Span::new(ServiceKind::S3, op, now, end, ctx)
                .billed(billed)
                .outcome(Outcome::Throttled)
        });
    }

    /// True when a fault injector with a non-zero rate is installed
    /// (lets callers skip keeping retry copies of payloads otherwise).
    pub fn faults_active(&self) -> bool {
        self.faults.is_active()
    }

    /// Rolls the fault injector for a data-plane request; on a throttle the
    /// error response arrives after the request-latency floor (no payload
    /// was transferred).
    fn maybe_throttle(&mut self, now: SimTime) -> Result<(), S3Error> {
        if self.faults.roll() {
            self.stats.throttled += 1;
            return Err(S3Error::SlowDown {
                available_at: now + self.transfer.latency,
            });
        }
        Ok(())
    }

    /// Creates a bucket (idempotent).
    pub fn create_bucket(&mut self, name: &str) {
        self.buckets.entry(name.to_string()).or_default();
    }

    /// Stores an object, replacing any previous version.
    pub fn put(
        &mut self,
        now: SimTime,
        bucket: &str,
        key: &str,
        data: Vec<u8>,
    ) -> Result<SimTime, S3Error> {
        if !self.buckets.contains_key(bucket) {
            return Err(S3Error::NoSuchBucket(bucket.to_string()));
        }
        self.stats.put_requests += 1;
        if let Err(e) = self.maybe_throttle(now) {
            self.record_throttle(now, "put");
            return Err(e);
        }
        let b = self.buckets.get_mut(bucket).expect("checked above");
        let len = data.len() as u64;
        self.stats.bytes_in += len;
        if let Some(old) = b.insert(key.to_string(), Arc::new(data)) {
            self.stats.stored_bytes -= old.len() as u64;
        }
        self.stats.stored_bytes += len;
        let ready = self.transfer.serve_unqueued(now, len as f64);
        let busy = self.transfer.service_time(len as f64);
        self.obs.record(|p, ctx| {
            Span::new(ServiceKind::S3, "put", now, ready, ctx)
                .bytes(len)
                .busy(busy)
                .billed(p.st_put)
        });
        Ok(ready)
    }

    /// Deletes an object. S3 DELETE requests are free of request charges,
    /// so the span carries a zero bill; the storage saving shows up in
    /// `stored_bytes` (and therefore in the monthly storage cost). Like
    /// real S3 (which answers 204 whether or not the key exists), deleting
    /// a missing key is an idempotent success — the property retries and
    /// redeliveries lean on. Throttles still happen: a delete is a
    /// data-plane request and the injector treats it like any other.
    pub fn delete(&mut self, now: SimTime, bucket: &str, key: &str) -> Result<SimTime, S3Error> {
        if !self.buckets.contains_key(bucket) {
            return Err(S3Error::NoSuchBucket(bucket.to_string()));
        }
        self.stats.delete_requests += 1;
        if let Err(e) = self.maybe_throttle(now) {
            self.record_throttle(now, "delete");
            return Err(e);
        }
        let b = self.buckets.get_mut(bucket).expect("checked above");
        let removed = b.remove(key);
        if let Some(old) = &removed {
            self.stats.stored_bytes -= old.len() as u64;
        }
        let end = now + self.transfer.latency;
        self.obs.record(|_p, ctx| {
            let span = Span::new(ServiceKind::S3, "delete", now, end, ctx);
            match &removed {
                Some(old) => span.bytes(old.len() as u64),
                None => span.outcome(Outcome::Missing),
            }
        });
        Ok(end)
    }

    /// Retrieves an object (shared, zero-copy for the simulation host).
    ///
    /// A `NoSuchKey` miss is still a billed GET — real S3 charges for the
    /// request whether or not the object exists. Only `NoSuchBucket` is
    /// free, mirroring SQS's unbilled `NoSuchQueue`: a misconfigured
    /// endpoint is a client-side error, a missing object is a served
    /// request.
    pub fn get(
        &mut self,
        now: SimTime,
        bucket: &str,
        key: &str,
    ) -> Result<(Arc<Vec<u8>>, SimTime), S3Error> {
        if !self.buckets.contains_key(bucket) {
            return Err(S3Error::NoSuchBucket(bucket.to_string()));
        }
        self.stats.get_requests += 1;
        if let Err(e) = self.maybe_throttle(now) {
            self.record_throttle(now, "get");
            return Err(e);
        }
        let b = self.buckets.get(bucket).expect("checked above");
        let Some(data) = b.get(key).cloned() else {
            let end = now + self.transfer.latency;
            self.obs.record(|p, ctx| {
                Span::new(ServiceKind::S3, "get", now, end, ctx)
                    .billed(p.st_get)
                    .outcome(Outcome::Missing)
            });
            return Err(S3Error::NoSuchKey {
                bucket: bucket.into(),
                key: key.into(),
            });
        };
        let len = data.len() as u64;
        self.stats.bytes_out += len;
        let ready = self.transfer.serve_unqueued(now, len as f64);
        let busy = self.transfer.service_time(len as f64);
        self.obs.record(|p, ctx| {
            Span::new(ServiceKind::S3, "get", now, ready, ctx)
                .bytes(len)
                .busy(busy)
                .billed(p.st_get)
        });
        Ok((data, ready))
    }

    /// Evaluates `predicate` server-side against a stored object (the
    /// S3-Select analog): the whole object is scanned where it lives and
    /// only the filtered result bytes travel back. Billed like a GET per
    /// request, plus `st_scan_gb` per GB *scanned*, plus `egress_gb` on
    /// the *returned* bytes (which also count toward `bytes_out`). A
    /// missing key is a billed request that scans nothing, like a missing
    /// GET; a throttled scan is billed, stateless, and moves no bytes.
    pub fn scan(
        &mut self,
        now: SimTime,
        bucket: &str,
        key: &str,
        predicate: &dyn ObjectPredicate,
    ) -> Result<(Vec<u8>, SimTime), S3Error> {
        if !self.buckets.contains_key(bucket) {
            return Err(S3Error::NoSuchBucket(bucket.to_string()));
        }
        self.stats.scan_requests += 1;
        if let Err(e) = self.maybe_throttle(now) {
            self.record_throttle(now, "scan");
            return Err(e);
        }
        let b = self.buckets.get(bucket).expect("checked above");
        let Some(data) = b.get(key).cloned() else {
            let end = now + self.transfer.latency;
            self.obs.record(|p, ctx| {
                Span::new(ServiceKind::S3, "scan", now, end, ctx)
                    .billed(p.st_get)
                    .outcome(Outcome::Missing)
            });
            return Err(S3Error::NoSuchKey {
                bucket: bucket.into(),
                key: key.into(),
            });
        };
        let scanned = data.len() as u64;
        let result = predicate.filter(&data);
        let returned = result.len() as u64;
        self.stats.bytes_scanned += scanned;
        self.stats.scan_returned_bytes += returned;
        self.stats.bytes_out += returned;
        // Server-side filtering at storage bandwidth, then the filtered
        // bytes ride the same per-connection pipe a GET uses.
        let scan_time = SimDuration::from_secs_f64(scanned as f64 / SCAN_BYTES_PER_SEC);
        let busy = scan_time + self.transfer.service_time(returned as f64);
        let ready = now + busy + self.transfer.latency;
        self.obs.record(|p, ctx| {
            Span::new(ServiceKind::S3, "scan", now, ready, ctx)
                .bytes(returned)
                .units(scanned as f64)
                .busy(busy)
                .billed(p.st_get + p.st_scan_gb.per_gb(scanned))
        });
        self.obs.record(|p, ctx| {
            Span::new(ServiceKind::Egress, "scan_return", now, ready, ctx)
                .bytes(returned)
                .billed(p.egress_gb.per_gb(returned))
        });
        Ok((result, ready))
    }

    /// Lists the keys of a bucket, in sorted order. Billed as one get-class
    /// request (AWS prices LIST like GET). `now` stamps the request in the
    /// span recorder; the listing itself advances no virtual time.
    pub fn list(&mut self, now: SimTime, bucket: &str) -> Result<Vec<String>, S3Error> {
        let b = self
            .buckets
            .get(bucket)
            .ok_or_else(|| S3Error::NoSuchBucket(bucket.to_string()))?;
        let mut keys: Vec<String> = b.keys().cloned().collect();
        keys.sort();
        self.stats.get_requests += 1;
        let end = now + self.transfer.latency;
        self.obs
            .record(|p, ctx| Span::new(ServiceKind::S3, "list", now, end, ctx).billed(p.st_get));
        Ok(keys)
    }

    /// Host-side snapshot of a bucket's objects, in key order. No request
    /// is billed and no virtual time passes — this exists for the host's
    /// cache-prewarm stage, which must not perturb the simulation.
    pub fn peek_all(&self, bucket: &str) -> Vec<(String, Arc<Vec<u8>>)> {
        let Some(b) = self.buckets.get(bucket) else {
            return Vec::new();
        };
        let mut objects: Vec<(String, Arc<Vec<u8>>)> =
            b.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        objects.sort_by(|(a, _), (b, _)| a.cmp(b));
        objects
    }

    /// Host-side snapshot of one object (shared, zero-copy). No request
    /// is billed and no virtual time passes — the front end uses this to
    /// capture the *old* version of a document before a replace or delete
    /// destroys it, so stale index entries stay derivable.
    pub fn peek(&self, bucket: &str, key: &str) -> Option<Arc<Vec<u8>>> {
        self.buckets.get(bucket)?.get(key).cloned()
    }

    /// True if the object exists.
    pub fn exists(&self, bucket: &str, key: &str) -> bool {
        self.buckets
            .get(bucket)
            .is_some_and(|b| b.contains_key(key))
    }

    /// Size in bytes of an object, if present.
    pub fn object_size(&self, bucket: &str, key: &str) -> Option<u64> {
        self.buckets.get(bucket)?.get(key).map(|o| o.len() as u64)
    }

    /// Usage counters.
    pub fn stats(&self) -> S3Stats {
        self.stats
    }
}

impl Default for S3 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut s3 = S3::new();
        s3.create_bucket("docs");
        let t1 = s3
            .put(SimTime::ZERO, "docs", "a.xml", b"<a/>".to_vec())
            .unwrap();
        assert!(t1 > SimTime::ZERO);
        let (data, t2) = s3.get(t1, "docs", "a.xml").unwrap();
        assert_eq!(&**data, b"<a/>");
        assert!(t2 > t1);
    }

    #[test]
    fn missing_objects_and_buckets_error() {
        let mut s3 = S3::new();
        assert!(matches!(
            s3.get(SimTime::ZERO, "nope", "k"),
            Err(S3Error::NoSuchBucket(_))
        ));
        s3.create_bucket("b");
        assert!(matches!(
            s3.get(SimTime::ZERO, "b", "k"),
            Err(S3Error::NoSuchKey { .. })
        ));
    }

    #[test]
    fn missing_key_gets_are_billed_missing_buckets_are_not() {
        let mut s3 = S3::new();
        s3.create_bucket("b");
        // NoSuchKey is a served (and billed) request that moves no data.
        assert!(matches!(
            s3.get(SimTime::ZERO, "b", "ghost"),
            Err(S3Error::NoSuchKey { .. })
        ));
        assert_eq!(s3.stats().get_requests, 1);
        assert_eq!(s3.stats().bytes_out, 0);
        // NoSuchBucket never reaches the service: nothing is billed,
        // mirroring SQS's unbilled NoSuchQueue contract.
        assert!(matches!(
            s3.get(SimTime::ZERO, "nope", "k"),
            Err(S3Error::NoSuchBucket(_))
        ));
        assert_eq!(s3.stats().get_requests, 1);
    }

    #[test]
    fn replacement_keeps_storage_accounting_consistent() {
        let mut s3 = S3::new();
        s3.create_bucket("b");
        s3.put(SimTime::ZERO, "b", "k", vec![0; 100]).unwrap();
        s3.put(SimTime::ZERO, "b", "k", vec![0; 40]).unwrap();
        let st = s3.stats();
        assert_eq!(st.stored_bytes, 40);
        assert_eq!(st.bytes_in, 140);
        assert_eq!(st.put_requests, 2);
    }

    #[test]
    fn list_is_sorted() {
        let mut s3 = S3::new();
        s3.create_bucket("b");
        s3.put(SimTime::ZERO, "b", "z", vec![]).unwrap();
        s3.put(SimTime::ZERO, "b", "a", vec![]).unwrap();
        assert_eq!(s3.list(SimTime::ZERO, "b").unwrap(), ["a", "z"]);
    }

    #[test]
    fn throttled_requests_are_billed_but_move_no_data() {
        use crate::fault::FaultInjector;
        let mut s3 = S3::new();
        s3.create_bucket("b");
        s3.put(SimTime::ZERO, "b", "k", vec![0; 1024]).unwrap();
        let clean = s3.stats();
        s3.set_faults(FaultInjector::new(1.0, 9)); // clamped to 0.95
        let mut throttles = 0;
        for _ in 0..50 {
            match s3.get(SimTime(777), "b", "k") {
                Ok(_) => {}
                Err(S3Error::SlowDown { available_at }) => {
                    assert!(available_at > SimTime(777));
                    throttles += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(throttles > 0, "a 95% rate throttles within 50 calls");
        let st = s3.stats();
        assert_eq!(st.get_requests, clean.get_requests + 50);
        assert_eq!(st.throttled, throttles);
        // Only the successful gets transferred bytes.
        assert_eq!(st.bytes_out, (50 - throttles) * 1024);
    }

    /// A byte-level predicate for the tests: keeps the lines containing a
    /// needle.
    struct Needle(&'static str);
    impl ObjectPredicate for Needle {
        fn filter(&self, bytes: &[u8]) -> Vec<u8> {
            let text = std::str::from_utf8(bytes).unwrap_or("");
            let mut out = Vec::new();
            for line in text.lines().filter(|l| l.contains(self.0)) {
                out.extend_from_slice(line.as_bytes());
                out.push(b'\n');
            }
            out
        }
    }

    #[test]
    fn scan_returns_filtered_bytes_and_accounts_them() {
        let mut s3 = S3::new();
        s3.create_bucket("b");
        let body = b"red apple\ngreen pear\nred cherry\n".to_vec();
        let len = body.len() as u64;
        s3.put(SimTime::ZERO, "b", "k", body).unwrap();
        let (result, ready) = s3.scan(SimTime(500), "b", "k", &Needle("red")).unwrap();
        assert_eq!(result, b"red apple\nred cherry\n");
        assert!(ready > SimTime(500));
        let st = s3.stats();
        assert_eq!(st.scan_requests, 1);
        assert_eq!(st.get_requests, 0, "scans are counted apart from gets");
        assert_eq!(st.bytes_scanned, len, "the whole object is scanned");
        assert_eq!(st.scan_returned_bytes, result.len() as u64);
        assert_eq!(
            st.bytes_out,
            result.len() as u64,
            "only the filtered bytes leave the store"
        );
    }

    #[test]
    fn throttled_scans_are_billed_but_stateless() {
        use crate::fault::FaultInjector;
        let mut s3 = S3::new();
        s3.create_bucket("b");
        s3.put(SimTime::ZERO, "b", "k", vec![b'x'; 1024]).unwrap();
        s3.set_faults(FaultInjector::new(1.0, 9)); // clamped to 0.95
        let mut throttles = 0;
        let mut served = 0;
        for _ in 0..50 {
            match s3.scan(SimTime(777), "b", "k", &Needle("x")) {
                Ok(_) => served += 1,
                Err(S3Error::SlowDown { available_at }) => {
                    assert!(available_at > SimTime(777));
                    throttles += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(throttles > 0, "a 95% rate throttles within 50 calls");
        let st = s3.stats();
        assert_eq!(st.scan_requests, 50, "throttled scans are still billed");
        assert_eq!(st.throttled, throttles);
        // Only the served scans touched or moved bytes.
        assert_eq!(st.bytes_scanned, served * 1024);
        assert_eq!(st.scan_returned_bytes, served * 1025);
        assert_eq!(st.bytes_out, served * 1025);
    }

    #[test]
    fn scanning_a_missing_key_is_a_billed_request_that_moves_nothing() {
        let mut s3 = S3::new();
        s3.create_bucket("b");
        assert!(matches!(
            s3.scan(SimTime::ZERO, "b", "ghost", &Needle("x")),
            Err(S3Error::NoSuchKey { .. })
        ));
        let st = s3.stats();
        assert_eq!(st.scan_requests, 1);
        assert_eq!(st.bytes_scanned, 0);
        assert_eq!(st.bytes_out, 0);
        // And an unknown bucket never reaches the service.
        assert!(matches!(
            s3.scan(SimTime::ZERO, "nope", "k", &Needle("x")),
            Err(S3Error::NoSuchBucket(_))
        ));
        assert_eq!(s3.stats().scan_requests, 1);
    }

    #[test]
    fn selective_scans_respond_faster_than_gets() {
        // 50 MB scanned at 100 MB/s with an empty result beats the same
        // object GET at 25 MB/s.
        let mut s3 = S3::new();
        s3.create_bucket("b");
        s3.put(SimTime::ZERO, "b", "big", vec![b'y'; 50 * 1024 * 1024])
            .unwrap();
        let (result, scan_done) = s3.scan(SimTime::ZERO, "b", "big", &Needle("z")).unwrap();
        assert!(result.is_empty());
        let (_, get_done) = s3.get(SimTime::ZERO, "b", "big").unwrap();
        assert!(
            scan_done.micros() < get_done.micros(),
            "scan {scan_done:?} vs get {get_done:?}"
        );
        // ~0.5 s of server-side scanning dominates the scan response.
        assert!((scan_done.as_secs_f64() - 0.5).abs() < 0.1);
    }

    #[test]
    fn delete_frees_storage_and_bills_nothing() {
        let mut s3 = S3::new();
        s3.create_bucket("b");
        s3.put(SimTime::ZERO, "b", "k", vec![0; 100]).unwrap();
        assert_eq!(s3.stats().stored_bytes, 100);
        let done = s3.delete(SimTime(5), "b", "k").unwrap();
        assert!(done > SimTime(5));
        let st = s3.stats();
        assert_eq!(st.stored_bytes, 0);
        assert_eq!(st.delete_requests, 1);
        // Deletes never count toward the billed request classes.
        assert_eq!(st.put_requests, 1);
        assert_eq!(st.get_requests, 0);
        assert!(!s3.exists("b", "k"));
    }

    #[test]
    fn deleting_a_missing_key_is_an_idempotent_success() {
        let mut s3 = S3::new();
        s3.create_bucket("b");
        s3.delete(SimTime::ZERO, "b", "ghost").unwrap();
        s3.delete(SimTime::ZERO, "b", "ghost").unwrap();
        assert_eq!(s3.stats().delete_requests, 2);
        assert_eq!(s3.stats().stored_bytes, 0);
        // An unknown bucket is still a client-side error.
        assert!(matches!(
            s3.delete(SimTime::ZERO, "nope", "k"),
            Err(S3Error::NoSuchBucket(_))
        ));
        assert_eq!(s3.stats().delete_requests, 2);
    }

    #[test]
    fn throttled_deletes_leave_the_object_in_place() {
        use crate::fault::FaultInjector;
        let mut s3 = S3::new();
        s3.create_bucket("b");
        s3.put(SimTime::ZERO, "b", "k", vec![0; 64]).unwrap();
        s3.set_faults(FaultInjector::new(1.0, 9)); // clamped to 0.95
        let mut throttles = 0;
        for _ in 0..50 {
            match s3.delete(SimTime(777), "b", "k") {
                Ok(_) => {}
                Err(S3Error::SlowDown { available_at }) => {
                    assert!(available_at > SimTime(777));
                    throttles += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(throttles > 0, "a 95% rate throttles within 50 calls");
        let st = s3.stats();
        assert_eq!(st.delete_requests, 50);
        assert_eq!(st.throttled, throttles);
        // At least one of the 50 attempts got through.
        assert!(!s3.exists("b", "k"));
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let mut s3 = S3::new();
        s3.create_bucket("b");
        let small = s3.put(SimTime::ZERO, "b", "s", vec![0; 1024]).unwrap();
        let large = s3
            .put(SimTime::ZERO, "b", "l", vec![0; 50 * 1024 * 1024])
            .unwrap();
        assert!(large.micros() > small.micros());
        // 50 MB at 25 MB/s ≈ 2 s.
        assert!((large.as_secs_f64() - 2.0).abs() < 0.1);
    }
}
