//! Virtual time for the discrete-event simulation.
//!
//! All durations in the simulated cloud are *virtual*: they are computed
//! from work metrics (bytes parsed, capacity units consumed, …) by the
//! service and work models, never from wall-clock measurements, so every
//! simulation run is bit-for-bit reproducible on any machine.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct SimTime(pub u64);

/// A span of virtual time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since the epoch.
    pub const fn micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch (lossy, for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// From fractional seconds, rounding up to a microsecond so that
    /// nonzero work always advances time.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        assert!(s >= 0.0 && s.is_finite(), "durations are non-negative: {s}");
        SimDuration((s * 1e6).ceil() as u64)
    }

    /// Microseconds in the span.
    pub const fn micros(self) -> u64 {
        self.0
    }

    /// Seconds (lossy, for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(earlier.0).expect("time went backwards"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.0 / 1_000_000;
        let (h, m, s) = (total_secs / 3600, (total_secs / 60) % 60, total_secs % 60);
        if h > 0 {
            write!(f, "{h}:{m:02}:{s:02}")
        } else if m > 0 {
            write!(f, "{m}:{s:02}")
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(2) + SimDuration::from_millis(500);
        assert_eq!(t.micros(), 2_500_000);
        assert_eq!((t - SimTime(500_000)).micros(), 2_000_000);
    }

    #[test]
    fn from_secs_f64_rounds_up() {
        assert_eq!(SimDuration::from_secs_f64(1e-9).micros(), 1);
        assert_eq!(SimDuration::from_secs_f64(0.0).micros(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_secs(7266).to_string(), "2:01:06");
        assert_eq!(SimDuration::from_secs(75).to_string(), "1:15");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn negative_spans_panic() {
        let _ = SimTime(1) - SimTime(2);
    }
}
