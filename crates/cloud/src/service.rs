//! The shared service-time model: a single-server queue with a capacity
//! rate, per-request overhead, and a network latency floor.
//!
//! Every simulated cloud service is, timing-wise, one of these. A request
//! of `units` capacity units arriving at `now` is served FIFO:
//!
//! ```text
//! start      = max(now, next_free)
//! done       = start + request_overhead + units / units_per_sec
//! next_free  = done
//! response   = done + latency            (latency does not hold capacity)
//! ```
//!
//! Under light load responses take `overhead + units/rate + latency`; when
//! aggregate demand exceeds `units_per_sec`, queueing delay grows without
//! bound — which is exactly how provisioned-throughput saturation shows up
//! in the paper's Figure 10 ("many strong instances … come close to
//! saturating DynamoDB's capacity").

use crate::clock::{SimDuration, SimTime};

/// A FIFO single-server queue with rate-based service times.
#[derive(Debug, Clone)]
pub struct ServiceQueue {
    next_free: SimTime,
    /// Fixed capacity cost per request (occupies the server).
    pub request_overhead: SimDuration,
    /// Capacity units served per second (bytes, capacity units, …).
    pub units_per_sec: f64,
    /// Network round-trip added to every response (does not occupy the
    /// server).
    pub latency: SimDuration,
    /// Total busy time accumulated (for utilization reporting).
    pub busy: SimDuration,
    /// Requests served.
    pub served: u64,
}

impl ServiceQueue {
    /// Creates a queue with the given parameters.
    pub fn new(request_overhead: SimDuration, units_per_sec: f64, latency: SimDuration) -> Self {
        assert!(units_per_sec > 0.0, "service rate must be positive");
        ServiceQueue {
            next_free: SimTime::ZERO,
            request_overhead,
            units_per_sec,
            latency,
            busy: SimDuration::ZERO,
            served: 0,
        }
    }

    /// Time the server is occupied by a request of `units` capacity units
    /// (overhead plus rate-based service; excludes queueing and latency).
    /// Shared by both serve paths and by span recording, so a recorded
    /// span's busy time is exactly what the queue charged.
    pub fn service_time(&self, units: f64) -> SimDuration {
        self.request_overhead + SimDuration::from_secs_f64(units / self.units_per_sec)
    }

    /// Serves a request of `units` capacity units arriving at `now`;
    /// returns the virtual time at which the response is available.
    pub fn serve(&mut self, now: SimTime, units: f64) -> SimTime {
        let service = self.service_time(units);
        let start = now.max(self.next_free);
        let done = start + service;
        self.next_free = done;
        self.busy += service;
        self.served += 1;
        done + self.latency
    }

    /// An infinitely-parallel variant: the request never queues (used for
    /// S3, which scales horizontally); only per-request time applies.
    pub fn serve_unqueued(&mut self, now: SimTime, units: f64) -> SimTime {
        let service = self.service_time(units);
        self.busy += service;
        self.served += 1;
        now + service + self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> ServiceQueue {
        ServiceQueue::new(
            SimDuration::from_millis(1),
            1000.0, // 1000 units/sec
            SimDuration::from_millis(10),
        )
    }

    #[test]
    fn unloaded_request_takes_overhead_plus_service_plus_latency() {
        let mut q = q();
        let done = q.serve(SimTime::ZERO, 500.0);
        // 1ms overhead + 500ms service + 10ms latency.
        assert_eq!(done.micros(), 511_000);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut q = q();
        let first = q.serve(SimTime::ZERO, 1000.0);
        // Second request at t=0 waits for the first to clear the server
        // (1ms + 1s), then is served.
        let second = q.serve(SimTime::ZERO, 1000.0);
        assert!(second > first);
        assert_eq!(second.micros(), 2 * 1_001_000 + 10_000);
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut q = q();
        let _ = q.serve(SimTime::ZERO, 100.0);
        // Arrive long after the server went idle: no queueing delay.
        let late = q.serve(SimTime(10_000_000), 100.0);
        assert_eq!(late.micros(), 10_000_000 + 1_000 + 100_000 + 10_000);
    }

    #[test]
    fn unqueued_requests_do_not_interact() {
        let mut q = q();
        let a = q.serve_unqueued(SimTime::ZERO, 1000.0);
        let b = q.serve_unqueued(SimTime::ZERO, 1000.0);
        assert_eq!(a, b);
    }

    #[test]
    fn busy_time_accumulates() {
        let mut q = q();
        q.serve(SimTime::ZERO, 1000.0);
        q.serve(SimTime::ZERO, 1000.0);
        assert_eq!(q.busy.micros(), 2 * 1_001_000);
        assert_eq!(q.served, 2);
    }
}
