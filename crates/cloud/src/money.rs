//! Exact monetary arithmetic.
//!
//! Cloud prices reach down to $3.2 × 10⁻⁸ per request (Table 3), and cost
//! reports sum millions of such charges; floating-point accumulation would
//! drift. [`Money`] stores **picodollars** (10⁻¹² $) in a `u128`, which
//! holds ~3.4 × 10²⁶ dollars — enough for any simulation — and makes every
//! cost in the system exactly reproducible.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A non-negative amount of money with picodollar resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct Money(u128);

/// Picodollars per dollar.
const PICO: u128 = 1_000_000_000_000;

impl Money {
    /// Zero dollars.
    pub const ZERO: Money = Money(0);

    /// Constructs from a dollar amount (e.g. a price-table constant).
    /// Rounds to the nearest picodollar.
    pub fn from_dollars(d: f64) -> Money {
        assert!(d >= 0.0 && d.is_finite(), "prices are non-negative: {d}");
        Money((d * PICO as f64).round() as u128)
    }

    /// Constructs from raw picodollars.
    pub const fn from_pico(p: u128) -> Money {
        Money(p)
    }

    /// The raw picodollar amount.
    pub const fn pico(self) -> u128 {
        self.0
    }

    /// Approximate dollar value (for display / plotting only).
    pub fn dollars(self) -> f64 {
        self.0 as f64 / PICO as f64
    }

    /// Price per GB applied to a byte count: `self × bytes / 10⁹`,
    /// rounded half-up to the nearest picodollar. (Cloud providers bill
    /// decimal gigabytes.) Truncating here instead would drop up to one
    /// pico per charge, so a bill split into N transfers would disagree
    /// with the same bytes charged at once.
    pub fn per_gb(self, bytes: u64) -> Money {
        Money(div_round_half_up(self.0 * bytes as u128, 1_000_000_000))
    }

    /// Price per hour applied to a duration in microseconds (fractional
    /// billing, as in the paper's cost formulas `VM$_h × t`), rounded
    /// half-up to the nearest picodollar for the same summability reason
    /// as [`Money::per_gb`].
    pub fn per_hour(self, micros: u64) -> Money {
        Money(div_round_half_up(self.0 * micros as u128, 3_600_000_000))
    }

    /// `self × numer / denom`, rounded half-up to the nearest picodollar —
    /// exact integer scaling for fractional multipliers (storage horizons
    /// in fractional months, churn fractions) that must stay summable.
    /// Scaling through `f64` instead silently truncates above 2⁵³ pico
    /// (~$9k), so split charges would drift from the aggregate.
    pub fn scaled(self, numer: u64, denom: u64) -> Money {
        assert!(denom > 0, "scaling denominator must be positive");
        Money(div_round_half_up(self.0 * numer as u128, denom as u128))
    }

    /// Saturating subtraction (benefit computations can go "negative";
    /// callers needing signed math use [`Money::signed_diff`]).
    pub fn saturating_sub(self, rhs: Money) -> Money {
        Money(self.0.saturating_sub(rhs.0))
    }

    /// `self − rhs` as signed picodollars (for amortization curves that
    /// cross zero, Figure 13).
    pub fn signed_diff(self, rhs: Money) -> i128 {
        self.0 as i128 - rhs.0 as i128
    }
}

/// `n / d` rounded half-up. `n` is at most price × u64::MAX ≈ 2⁹⁸ for any
/// realistic price, so `n + d/2` cannot overflow a `u128`.
fn div_round_half_up(n: u128, d: u128) -> u128 {
    (n + d / 2) / d
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money(self.0 + rhs.0)
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        self.0 += rhs.0;
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        Money(
            self.0
                .checked_sub(rhs.0)
                .expect("money subtraction underflow"),
        )
    }
}

impl Mul<u64> for Money {
    type Output = Money;
    fn mul(self, rhs: u64) -> Money {
        Money(self.0 * rhs as u128)
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, Add::add)
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dollars = self.0 / PICO;
        let frac = self.0 % PICO;
        // Print with enough precision to show request-level prices.
        let s = format!("{:012}", frac);
        let trimmed = s.trim_end_matches('0');
        let digits = trimmed.len().clamp(2, 12);
        write!(f, "${}.{}", dollars, &s[..digits])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_dollars_round_trips_table3_constants() {
        let idx_get = Money::from_dollars(0.000000032);
        assert_eq!(idx_get.pico(), 32_000);
        let vm = Money::from_dollars(0.34);
        assert_eq!(vm.pico(), 340_000_000_000);
    }

    #[test]
    fn per_gb_is_decimal_gigabytes() {
        let p = Money::from_dollars(0.19);
        assert_eq!(p.per_gb(1_000_000_000), p);
        // Half a decimal GB at $0.19/GB is exactly $0.095.
        assert_eq!(p.per_gb(500_000_000).pico(), 95_000_000_000);
    }

    #[test]
    fn per_hour_fractional_billing() {
        let p = Money::from_dollars(0.34);
        // 30 virtual minutes on a large instance = exactly $0.17.
        assert_eq!(p.per_hour(1_800_000_000).pico(), 170_000_000_000);
    }

    #[test]
    fn fractional_charges_round_half_up_not_down() {
        // A 1-pico/GB price over half a GB sits exactly on the half-pico
        // boundary: truncation billed 0, round-half-up bills 1.
        assert_eq!(Money::from_pico(1).per_gb(500_000_000).pico(), 1);
        assert_eq!(Money::from_pico(1).per_gb(499_999_999).pico(), 0);
        // Same boundary for hourly billing: 1 pico/h over half an hour.
        assert_eq!(Money::from_pico(1).per_hour(1_800_000_000).pico(), 1);
        assert_eq!(Money::from_pico(1).per_hour(1_799_999_999).pico(), 0);
    }

    #[test]
    fn split_charges_sum_to_the_aggregate_within_a_pico_each() {
        // Property: N equal charges sum to the aggregate charge within
        // 1 pico per charge — round-half-up bounds each charge's error by
        // half a pico, so |N·charge(x) − charge(N·x)| ≤ N picos. Under the
        // old truncation the drift reached a full pico per charge and was
        // always one-sided, so split bills systematically undershot.
        let prices = [
            Money::from_dollars(0.19),        // egress $/GB
            Money::from_dollars(0.000000032), // request-level price
            Money::from_pico(7),              // adversarially tiny
        ];
        for price in prices {
            for n in [2u64, 3, 7, 25, 1000] {
                for chunk in [1u64, 1024, 500_000_000, 999_999_999] {
                    let split = price.per_gb(chunk) * n;
                    let aggregate = price.per_gb(chunk * n);
                    let drift = split.signed_diff(aggregate).unsigned_abs();
                    assert!(
                        drift <= n as u128,
                        "{price} × {n} chunks of {chunk} B: drift {drift} pico"
                    );
                }
            }
        }
        // And the flagship case: equal hourly slices of one instance-hour.
        let vm = Money::from_dollars(0.34);
        for n in [2u64, 3, 6, 60, 3600] {
            let slice = 3_600_000_000 / n;
            let split = vm.per_hour(slice) * n;
            let aggregate = vm.per_hour(slice * n);
            let drift = split.signed_diff(aggregate).unsigned_abs();
            assert!(drift <= n as u128, "{n} slices: drift {drift} pico");
        }
    }

    #[test]
    fn scaled_is_exact_above_f64_precision() {
        // Above 2^53 pico an f64 round-trip loses low bits; integer
        // scaling must not.
        let m = Money::from_pico((1u128 << 53) + 7);
        assert_eq!(m.scaled(1, 1), m);
        assert_eq!(m.scaled(12, 1), m * 12);
        assert_eq!(m.scaled(3, 2).pico(), (m.pico() * 3).div_ceil(2));
        // Property: a charge split into N equal fractional slices sums
        // within 1 pico per slice of the aggregate (round-half-up bounds
        // each slice's error by half a pico).
        for n in [2u64, 3, 7, 12, 365] {
            let slice = m.scaled(1, n);
            let drift = (slice * n).signed_diff(m).unsigned_abs();
            assert!(drift <= n as u128, "{n} slices drift {drift} pico");
        }
    }

    #[test]
    fn summation_is_exact() {
        // A million get requests at $3.2e-8 each must be exactly $0.032.
        let one = Money::from_dollars(0.000000032);
        let total: Money = (0..1_000_000).map(|_| one).sum();
        assert_eq!(total.pico(), 32_000u128 * 1_000_000);
        assert_eq!(total, one * 1_000_000);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Money::from_dollars(0.34).to_string(), "$0.34");
        assert_eq!(Money::from_dollars(1.5).to_string(), "$1.50");
        assert_eq!(Money::from_dollars(0.000011).to_string(), "$0.000011");
    }

    #[test]
    fn signed_diff_crosses_zero() {
        let a = Money::from_dollars(1.0);
        let b = Money::from_dollars(2.0);
        assert!(a.signed_diff(b) < 0);
        assert!(b.signed_diff(a) > 0);
    }
}
