//! Cloud price tables (paper Section 7.2, Table 3).
//!
//! The default table is the paper's: AWS Asia Pacific (Singapore) as of
//! September–October 2012. Per the paper's Table 1 portability claim, the
//! same architecture maps onto Google Cloud and Windows Azure; alternative
//! tables with those providers' contemporary price points are provided so
//! the cost model can be re-evaluated under a different provider without
//! touching any other code.

use crate::money::Money;

/// Virtual machine flavors the experiments use (paper Section 8.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstanceType {
    /// "Large": 7.5 GB RAM, 2 virtual cores × 2 EC2 Compute Units.
    Large,
    /// "Extra large": 15 GB RAM, 4 virtual cores × 2 EC2 Compute Units.
    ExtraLarge,
}

impl InstanceType {
    /// Number of virtual cores.
    pub fn cores(self) -> usize {
        match self {
            InstanceType::Large => 2,
            InstanceType::ExtraLarge => 4,
        }
    }

    /// EC2 Compute Units per core (one ECU ≈ a 1.0–1.2 GHz 2007 Xeon).
    pub fn ecu_per_core(self) -> f64 {
        2.0
    }

    /// Short label used in reports (`l` / `xl`).
    pub fn label(self) -> &'static str {
        match self {
            InstanceType::Large => "l",
            InstanceType::ExtraLarge => "xl",
        }
    }
}

/// A provider price table — the constants of Section 7.2.
#[derive(Debug, Clone)]
pub struct PriceTable {
    /// Provider label for reports.
    pub provider: &'static str,
    /// `ST$_{m,GB}` — file store, per GB-month.
    pub st_month_gb: Money,
    /// `STput$` — file store, per put request.
    pub st_put: Money,
    /// `STget$` — file store, per get request.
    pub st_get: Money,
    /// `IDX$_{m,GB}` — index store, per GB-month.
    pub idx_month_gb: Money,
    /// `IDXput$` — index store, per put API request.
    pub idx_put: Money,
    /// `IDXget$` — index store, per get API request.
    pub idx_get: Money,
    /// `VM$_{h,l}` — large instance, per hour.
    pub vm_hour_large: Money,
    /// `VM$_{h,xl}` — extra-large instance, per hour.
    pub vm_hour_xlarge: Money,
    /// `QS$` — queue service, per API request.
    pub qs_request: Money,
    /// `egress$_{GB}` — data transferred out of the cloud, per GB.
    pub egress_gb: Money,
    /// `STscan$_{GB}` — server-side scan (the S3-Select analog), per GB
    /// of stored object bytes *scanned*; the filtered result bytes are
    /// additionally billed at `egress_gb`, and each scan request at
    /// `st_get`.
    pub st_scan_gb: Money,
}

impl PriceTable {
    /// The paper's Table 3: AWS Singapore, October 2012.
    pub fn aws_singapore_2012() -> PriceTable {
        PriceTable {
            provider: "AWS (Singapore, Oct 2012)",
            st_month_gb: Money::from_dollars(0.125),
            st_put: Money::from_dollars(0.000011),
            st_get: Money::from_dollars(0.0000011),
            idx_month_gb: Money::from_dollars(1.14),
            idx_put: Money::from_dollars(0.00000032),
            idx_get: Money::from_dollars(0.000000032),
            vm_hour_large: Money::from_dollars(0.34),
            vm_hour_xlarge: Money::from_dollars(0.68),
            qs_request: Money::from_dollars(0.000001),
            egress_gb: Money::from_dollars(0.19),
            st_scan_gb: Money::from_dollars(0.002),
        }
    }

    /// Google Cloud equivalents (Cloud Storage, High Replication
    /// Datastore, Compute Engine, Task Queues) with era-appropriate list
    /// prices — for the Table 1 portability experiment.
    pub fn google_cloud_2012() -> PriceTable {
        PriceTable {
            provider: "Google Cloud (2012)",
            st_month_gb: Money::from_dollars(0.12),
            st_put: Money::from_dollars(0.00001),
            st_get: Money::from_dollars(0.000001),
            idx_month_gb: Money::from_dollars(0.24),
            idx_put: Money::from_dollars(0.0000002),
            idx_get: Money::from_dollars(0.00000007),
            vm_hour_large: Money::from_dollars(0.29),
            vm_hour_xlarge: Money::from_dollars(0.58),
            qs_request: Money::from_dollars(0.000001),
            egress_gb: Money::from_dollars(0.18),
            st_scan_gb: Money::from_dollars(0.0018),
        }
    }

    /// Windows Azure equivalents (BLOB Storage, Tables, Virtual Machines,
    /// Queues) — for the Table 1 portability experiment.
    pub fn windows_azure_2012() -> PriceTable {
        PriceTable {
            provider: "Windows Azure (2012)",
            st_month_gb: Money::from_dollars(0.125),
            st_put: Money::from_dollars(0.0000001),
            st_get: Money::from_dollars(0.0000001),
            idx_month_gb: Money::from_dollars(0.14),
            idx_put: Money::from_dollars(0.0000001),
            idx_get: Money::from_dollars(0.0000001),
            vm_hour_large: Money::from_dollars(0.32),
            vm_hour_xlarge: Money::from_dollars(0.64),
            qs_request: Money::from_dollars(0.0000001),
            egress_gb: Money::from_dollars(0.12),
            st_scan_gb: Money::from_dollars(0.0016),
        }
    }

    /// Hourly price of an instance type.
    pub fn vm_hour(&self, t: InstanceType) -> Money {
        match t {
            InstanceType::Large => self.vm_hour_large,
            InstanceType::ExtraLarge => self.vm_hour_xlarge,
        }
    }
}

impl Default for PriceTable {
    fn default() -> Self {
        PriceTable::aws_singapore_2012()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_constants_are_exact() {
        let p = PriceTable::aws_singapore_2012();
        assert_eq!(p.st_month_gb.dollars(), 0.125);
        assert_eq!(p.idx_get.pico(), 32_000);
        assert_eq!(p.vm_hour(InstanceType::ExtraLarge).dollars(), 0.68);
        // The S3-Select analog: $0.002 per GB scanned.
        assert_eq!(p.st_scan_gb.pico(), 2_000_000_000);
    }

    #[test]
    fn every_provider_prices_scans() {
        for p in [
            PriceTable::aws_singapore_2012(),
            PriceTable::google_cloud_2012(),
            PriceTable::windows_azure_2012(),
        ] {
            assert!(p.st_scan_gb > Money::ZERO, "{}", p.provider);
            // Scanning a GB must cost less than egressing it — otherwise
            // pushdown could never pay off.
            assert!(p.st_scan_gb < p.egress_gb, "{}", p.provider);
        }
    }

    #[test]
    fn xl_costs_double_l() {
        let p = PriceTable::default();
        assert_eq!(
            p.vm_hour(InstanceType::ExtraLarge).pico(),
            2 * p.vm_hour(InstanceType::Large).pico()
        );
    }

    #[test]
    fn instance_capabilities() {
        assert_eq!(InstanceType::Large.cores(), 2);
        assert_eq!(InstanceType::ExtraLarge.cores(), 4);
        assert_eq!(InstanceType::Large.label(), "l");
    }
}
