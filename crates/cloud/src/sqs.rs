//! The simulated message-queue service (Amazon SQS in the paper).
//!
//! SQS ties the warehouse modules together (architecture Figure 1) and is
//! the fault-tolerance mechanism: "if an instance fails to renew its lease
//! on the message which had caused a task to start, the message becomes
//! available again and another virtual instance will take over the job"
//! (Section 3). The model therefore implements *visibility timeouts*:
//! `receive` hides a message for a lease period rather than removing it;
//! only an explicit `delete` removes it; an expired lease makes the
//! message deliverable again (at-least-once semantics).
//!
//! Every billable operation returns `Result<_, SqsError>`: an unknown
//! queue is a typed [`SqsError::NoSuchQueue`] (uniformly — including the
//! read-only `drained`/`len` probes, which used to report `false`/`0`
//! silently), and an installed [`FaultInjector`] may throttle any billed
//! request with [`SqsError::Throttled`]. Throttled requests are still
//! billed — retries show up in the cost ledger, as the paper's
//! per-request pricing implies.

use crate::clock::{SimDuration, SimTime};
use crate::fault::FaultInjector;
use crate::obs::{Outcome, Recorder, ServiceKind, Span};
use std::collections::HashMap;
use std::fmt;

/// A queued message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Unique receipt handle (per queue).
    pub id: u64,
    /// Payload (the warehouse sends document URIs / query texts).
    pub body: String,
    /// How many times the message has been received (1 on first delivery).
    pub receive_count: u32,
}

/// Errors from the queue service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqsError {
    /// Operation on a queue that was never created.
    NoSuchQueue(String),
    /// The request was throttled (retryable); the failure response
    /// arrives at `available_at`. The request was still billed.
    Throttled {
        /// When the caller learns about the failure.
        available_at: SimTime,
    },
}

impl fmt::Display for SqsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqsError::NoSuchQueue(q) => write!(f, "no such queue: {q}"),
            SqsError::Throttled { available_at } => {
                write!(f, "request throttled (response at {:?})", available_at)
            }
        }
    }
}

impl std::error::Error for SqsError {}

#[derive(Debug, Clone)]
struct Stored {
    id: u64,
    body: String,
    /// Invisible until this time (lease), if any.
    invisible_until: Option<SimTime>,
    receive_count: u32,
}

/// Usage counters (every API call is billed `QS$`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SqsStats {
    /// Total API requests: send, receive (including empty receives),
    /// delete, lease renewals — and throttled attempts, which are billed
    /// like any other request.
    pub requests: u64,
    /// Messages sent.
    pub sent: u64,
    /// Messages delivered (receives that returned a message).
    pub delivered: u64,
    /// Messages redelivered after a lease expiry.
    pub redelivered: u64,
    /// Lease renewals issued.
    pub renewals: u64,
    /// Requests rejected by the fault injector (each one billed).
    pub throttled: u64,
    /// Queue-depth probes served (autoscaler samples; each one billed).
    pub depth_polls: u64,
}

/// The simulated queue service.
pub struct Sqs {
    queues: HashMap<String, Queue>,
    stats: SqsStats,
    latency: SimDuration,
    faults: FaultInjector,
    obs: Recorder,
}

#[derive(Default)]
struct Queue {
    messages: Vec<Stored>,
    /// Tombstones for deleted messages, purged lazily (keeps `delete`
    /// amortized O(1) instead of scanning the whole backlog per call).
    deleted: std::collections::HashSet<u64>,
    next_id: u64,
    closed: bool,
}

impl Queue {
    fn live_len(&self) -> usize {
        self.messages.len() - self.deleted.len()
    }

    fn compact_if_needed(&mut self) {
        if self.deleted.len() > 64 && self.deleted.len() * 2 > self.messages.len() {
            let deleted = std::mem::take(&mut self.deleted);
            self.messages.retain(|m| !deleted.contains(&m.id));
        }
    }
}

impl Sqs {
    /// Creates the service with a default 4 ms request latency and no
    /// fault injection.
    pub fn new() -> Sqs {
        Sqs {
            queues: HashMap::new(),
            stats: SqsStats::default(),
            latency: SimDuration::from_millis(4),
            faults: FaultInjector::off(),
            obs: Recorder::off(),
        }
    }

    /// Installs a fault injector (replacing any previous one).
    pub fn set_faults(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// Installs a span recorder (replacing any previous one).
    pub fn set_recorder(&mut self, obs: Recorder) {
        self.obs = obs;
    }

    /// Creates a queue (idempotent).
    pub fn create_queue(&mut self, name: &str) {
        self.queues.entry(name.to_string()).or_default();
    }

    fn queue_mut(&mut self, name: &str) -> Result<&mut Queue, SqsError> {
        self.queues
            .get_mut(name)
            .ok_or_else(|| SqsError::NoSuchQueue(name.to_string()))
    }

    fn queue(&self, name: &str) -> Result<&Queue, SqsError> {
        self.queues
            .get(name)
            .ok_or_else(|| SqsError::NoSuchQueue(name.to_string()))
    }

    /// Bills one request and rolls the fault injector; on a throttle the
    /// error response arrives after the usual request latency.
    fn billed_request(&mut self, now: SimTime, op: &'static str) -> Result<(), SqsError> {
        self.stats.requests += 1;
        if self.faults.roll() {
            self.stats.throttled += 1;
            let available_at = now + self.latency;
            self.obs.record(|p, ctx| {
                Span::new(ServiceKind::Sqs, op, now, available_at, ctx)
                    .billed(p.qs_request)
                    .outcome(Outcome::Throttled)
            });
            return Err(SqsError::Throttled { available_at });
        }
        Ok(())
    }

    /// Records the span of a successfully served request (`Ok` outcome,
    /// one `QS$` charge, response at `now + latency`).
    fn record_ok(&self, now: SimTime, op: &'static str, bytes: u64) {
        self.obs.record(|p, ctx| {
            Span::new(ServiceKind::Sqs, op, now, now + self.latency, ctx)
                .bytes(bytes)
                .billed(p.qs_request)
        });
    }

    /// Sends a message; returns the virtual completion time.
    pub fn send(
        &mut self,
        now: SimTime,
        queue: &str,
        body: impl Into<String>,
    ) -> Result<SimTime, SqsError> {
        self.queue(queue)?;
        self.billed_request(now, "send")?;
        self.stats.sent += 1;
        let latency = self.latency;
        let body: String = body.into();
        let body_len = body.len() as u64;
        let q = self.queue_mut(queue)?;
        assert!(!q.closed, "send on closed queue {queue}");
        let id = q.next_id;
        q.next_id += 1;
        q.messages.push(Stored {
            id,
            body,
            invisible_until: None,
            receive_count: 0,
        });
        self.record_ok(now, "send", body_len);
        Ok(now + latency)
    }

    /// Receives one message, leasing it for `visibility`. Returns `None`
    /// when no message is currently visible (still a billed request).
    #[allow(clippy::type_complexity)]
    pub fn receive(
        &mut self,
        now: SimTime,
        queue: &str,
        visibility: SimDuration,
    ) -> Result<(Option<Message>, SimTime), SqsError> {
        self.queue(queue)?;
        self.billed_request(now, "receive")?;
        let latency = self.latency;
        let q = self.queue_mut(queue)?;
        // Expiry is exclusive: a lease set (or renewed) to expire at `t`
        // still protects the message to an observer at exactly `t`, so a
        // renewal and a concurrent poll at the same instant cannot race the
        // message away from its healthy holder.
        let deleted = &q.deleted;
        let found = q
            .messages
            .iter_mut()
            .find(|m| !deleted.contains(&m.id) && m.invisible_until.is_none_or(|t| t < now));
        let msg = found.map(|m| {
            m.invisible_until = Some(now + visibility);
            m.receive_count += 1;
            Message {
                id: m.id,
                body: m.body.clone(),
                receive_count: m.receive_count,
            }
        });
        if let Some(m) = &msg {
            self.stats.delivered += 1;
            if m.receive_count > 1 {
                self.stats.redelivered += 1;
            }
        }
        // An empty receive is a billed request too; spans mark it Missing
        // so empty-poll cost shows up in the attribution tables.
        self.obs.record(|p, ctx| {
            let mut span = Span::new(ServiceKind::Sqs, "receive", now, now + latency, ctx)
                .billed(p.qs_request);
            match &msg {
                Some(m) => span.bytes = m.body.len() as u64,
                None => span.outcome = Outcome::Missing,
            }
            span
        });
        Ok((msg, now + latency))
    }

    /// Deletes a received message by id (completes its processing).
    ///
    /// Model simplification: deletion is by message id, without real SQS's
    /// per-receive receipt handles — a consumer whose lease already
    /// expired could still delete the message out from under the new
    /// holder. The warehouse's crashed actors never act again, so the
    /// pipeline cannot trigger this; callers building other topologies
    /// should not rely on delete-after-expiry being rejected.
    pub fn delete(&mut self, now: SimTime, queue: &str, id: u64) -> Result<SimTime, SqsError> {
        self.queue(queue)?;
        self.billed_request(now, "delete")?;
        let latency = self.latency;
        let q = self.queue_mut(queue)?;
        q.deleted.insert(id);
        q.compact_if_needed();
        self.record_ok(now, "delete", 0);
        Ok(now + latency)
    }

    /// Renews the lease on a message (the paper's crash-detection
    /// mechanism: a healthy instance renews; a crashed one does not).
    pub fn renew_lease(
        &mut self,
        now: SimTime,
        queue: &str,
        id: u64,
        visibility: SimDuration,
    ) -> Result<SimTime, SqsError> {
        self.queue(queue)?;
        self.billed_request(now, "renew")?;
        self.stats.renewals += 1;
        let latency = self.latency;
        let q = self.queue_mut(queue)?;
        if !q.deleted.contains(&id) {
            if let Some(m) = q.messages.iter_mut().find(|m| m.id == id) {
                m.invisible_until = Some(now + visibility);
            }
        }
        self.record_ok(now, "renew", 0);
        Ok(now + latency)
    }

    /// Samples the queue's depth — messages present, visible or leased —
    /// as a *billed* request (real SQS exposes depth via the
    /// `GetQueueAttributes` API, charged like any other call; the
    /// autoscaler pays for every sample it takes). Throttleable like every
    /// billed operation; the measurement is returned with the usual
    /// request latency.
    pub fn depth(&mut self, now: SimTime, queue: &str) -> Result<(usize, SimTime), SqsError> {
        self.queue(queue)?;
        self.billed_request(now, "depth")?;
        self.stats.depth_polls += 1;
        let depth = self.queue(queue)?.live_len();
        self.record_ok(now, "depth", 0);
        Ok((depth, now + self.latency))
    }

    /// Marks the queue as complete: consumers seeing it empty may stop.
    /// (An orchestration convenience, not an SQS API call; not billed and
    /// never throttled.)
    pub fn close(&mut self, queue: &str) {
        self.queues
            .get_mut(queue)
            .unwrap_or_else(|| panic!("no such queue: {queue}"))
            .closed = true;
    }

    /// Reopens a closed queue for a new work phase.
    pub fn open(&mut self, queue: &str) {
        self.queues
            .get_mut(queue)
            .unwrap_or_else(|| panic!("no such queue: {queue}"))
            .closed = false;
    }

    /// True when the queue is closed and has no messages left (visible or
    /// leased). Unbilled host-side probe; errors on an unknown queue like
    /// every other operation.
    pub fn drained(&self, queue: &str) -> Result<bool, SqsError> {
        let q = self.queue(queue)?;
        Ok(q.closed && q.live_len() == 0)
    }

    /// Number of messages currently in the queue (visible or leased).
    pub fn len(&self, queue: &str) -> Result<usize, SqsError> {
        Ok(self.queue(queue)?.live_len())
    }

    /// True if the queue holds no messages.
    pub fn is_empty(&self, queue: &str) -> Result<bool, SqsError> {
        Ok(self.len(queue)? == 0)
    }

    /// Usage counters.
    pub fn stats(&self) -> SqsStats {
        self.stats
    }
}

impl Default for Sqs {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultInjector;

    const VIS: SimDuration = SimDuration::from_secs(30);

    #[test]
    fn send_receive_delete_lifecycle() {
        let mut sqs = Sqs::new();
        sqs.create_queue("loader");
        let t = sqs.send(SimTime::ZERO, "loader", "doc1.xml").unwrap();
        let (msg, t) = sqs.receive(t, "loader", VIS).unwrap();
        let msg = msg.unwrap();
        assert_eq!(msg.body, "doc1.xml");
        assert_eq!(msg.receive_count, 1);
        sqs.delete(t, "loader", msg.id).unwrap();
        assert!(sqs.is_empty("loader").unwrap());
        assert_eq!(sqs.stats().requests, 3);
    }

    #[test]
    fn unknown_queue_is_a_typed_error_everywhere() {
        let mut sqs = Sqs::new();
        let missing = |e: SqsError| matches!(e, SqsError::NoSuchQueue(ref q) if q == "nope");
        assert!(missing(sqs.send(SimTime::ZERO, "nope", "m").unwrap_err()));
        assert!(missing(
            sqs.receive(SimTime::ZERO, "nope", VIS).unwrap_err()
        ));
        assert!(missing(sqs.delete(SimTime::ZERO, "nope", 0).unwrap_err()));
        assert!(missing(
            sqs.renew_lease(SimTime::ZERO, "nope", 0, VIS).unwrap_err()
        ));
        assert!(missing(sqs.drained("nope").unwrap_err()));
        assert!(missing(sqs.len("nope").unwrap_err()));
        assert!(missing(sqs.is_empty("nope").unwrap_err()));
        // Nothing was billed for requests that never reached a queue.
        assert_eq!(sqs.stats().requests, 0);
    }

    #[test]
    fn throttled_requests_are_billed_and_carry_response_time() {
        let mut sqs = Sqs::new();
        sqs.create_queue("q");
        sqs.set_faults(FaultInjector::new(1.0, 3)); // clamped to 0.95
        let mut throttles = 0;
        let mut sends = 0;
        for _ in 0..50 {
            match sqs.send(SimTime(1000), "q", "m") {
                Ok(_) => sends += 1,
                Err(SqsError::Throttled { available_at }) => {
                    assert_eq!(available_at, SimTime(1000) + SimDuration::from_millis(4));
                    throttles += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(throttles > 0, "a 95% rate throttles within 50 calls");
        let st = sqs.stats();
        assert_eq!(st.requests, 50, "throttled attempts are billed");
        assert_eq!(st.throttled, throttles);
        assert_eq!(st.sent, sends);
    }

    #[test]
    fn leased_message_is_invisible_until_timeout() {
        let mut sqs = Sqs::new();
        sqs.create_queue("q");
        sqs.send(SimTime::ZERO, "q", "m").unwrap();
        let (m1, _) = sqs.receive(SimTime(10), "q", VIS).unwrap();
        assert!(m1.is_some());
        // Within the lease: invisible.
        let (m2, _) = sqs.receive(SimTime(20), "q", VIS).unwrap();
        assert!(m2.is_none());
        // After the lease expires (no delete — simulated crash):
        // redelivered. Expiry is exclusive, so strictly after the deadline.
        let after = SimTime(11) + VIS;
        let (m3, _) = sqs.receive(after, "q", VIS).unwrap();
        let m3 = m3.unwrap();
        assert_eq!(m3.receive_count, 2);
        assert_eq!(sqs.stats().redelivered, 1);
    }

    #[test]
    fn renew_extends_lease() {
        let mut sqs = Sqs::new();
        sqs.create_queue("q");
        sqs.send(SimTime::ZERO, "q", "m").unwrap();
        let (m, _) = sqs.receive(SimTime::ZERO, "q", VIS).unwrap();
        let id = m.unwrap().id;
        sqs.renew_lease(SimTime(29_000_000), "q", id, VIS).unwrap();
        assert_eq!(sqs.stats().renewals, 1);
        // The original lease would have expired at t=30 s; renewal pushed
        // it to t=59 s.
        let (m2, _) = sqs.receive(SimTime(31_000_000), "q", VIS).unwrap();
        assert!(m2.is_none());
        let (m3, _) = sqs.receive(SimTime(60_000_000), "q", VIS).unwrap();
        assert!(m3.is_some());
    }

    #[test]
    fn lease_expiry_is_exclusive() {
        // At the exact expiry instant the holder is still protected, so a
        // same-instant renewal cannot lose a race with another consumer.
        let mut sqs = Sqs::new();
        sqs.create_queue("q");
        sqs.send(SimTime::ZERO, "q", "m").unwrap();
        let (m, _) = sqs.receive(SimTime::ZERO, "q", VIS).unwrap();
        let id = m.unwrap().id;
        let deadline = SimTime::ZERO + VIS;
        let (race, _) = sqs.receive(deadline, "q", VIS).unwrap();
        assert!(
            race.is_none(),
            "message must stay protected at the deadline"
        );
        sqs.renew_lease(deadline, "q", id, VIS).unwrap();
        let (race, _) = sqs
            .receive(deadline + SimDuration::from_micros(1), "q", VIS)
            .unwrap();
        assert!(race.is_none(), "renewal at the deadline holds the lease");
    }

    #[test]
    fn close_and_drained() {
        let mut sqs = Sqs::new();
        sqs.create_queue("q");
        sqs.send(SimTime::ZERO, "q", "m").unwrap();
        sqs.close("q");
        assert!(!sqs.drained("q").unwrap());
        let (m, _) = sqs.receive(SimTime::ZERO, "q", VIS).unwrap();
        sqs.delete(SimTime::ZERO, "q", m.unwrap().id).unwrap();
        assert!(sqs.drained("q").unwrap());
    }

    #[test]
    fn empty_receive_is_still_billed() {
        let mut sqs = Sqs::new();
        sqs.create_queue("q");
        let (m, _) = sqs.receive(SimTime::ZERO, "q", VIS).unwrap();
        assert!(m.is_none());
        assert_eq!(sqs.stats().requests, 1);
    }

    #[test]
    fn depth_probe_is_billed_and_counts_leased_messages() {
        let mut sqs = Sqs::new();
        sqs.create_queue("q");
        sqs.send(SimTime::ZERO, "q", "a").unwrap();
        sqs.send(SimTime::ZERO, "q", "b").unwrap();
        let requests_before = sqs.stats().requests;
        let (d, t) = sqs.depth(SimTime(100), "q").unwrap();
        assert_eq!(d, 2);
        assert_eq!(t, SimTime(100) + SimDuration::from_millis(4));
        // A leased (invisible) message still counts toward depth…
        let (m, _) = sqs.receive(SimTime(200), "q", VIS).unwrap();
        assert_eq!(sqs.depth(SimTime(300), "q").unwrap().0, 2);
        // …a deleted one no longer does.
        sqs.delete(SimTime(400), "q", m.unwrap().id).unwrap();
        assert_eq!(sqs.depth(SimTime(500), "q").unwrap().0, 1);
        let st = sqs.stats();
        assert_eq!(st.depth_polls, 3);
        // Three depth probes plus the receive and delete, all billed.
        assert_eq!(st.requests, requests_before + 5);
        assert!(matches!(
            sqs.depth(SimTime::ZERO, "nope").unwrap_err(),
            SqsError::NoSuchQueue(_)
        ));
    }

    #[test]
    fn fifo_order_for_visible_messages() {
        let mut sqs = Sqs::new();
        sqs.create_queue("q");
        sqs.send(SimTime::ZERO, "q", "first").unwrap();
        sqs.send(SimTime::ZERO, "q", "second").unwrap();
        let (a, _) = sqs.receive(SimTime::ZERO, "q", VIS).unwrap();
        let (b, _) = sqs.receive(SimTime::ZERO, "q", VIS).unwrap();
        assert_eq!(a.unwrap().body, "first");
        assert_eq!(b.unwrap().body, "second");
    }
}
