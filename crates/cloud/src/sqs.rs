//! The simulated message-queue service (Amazon SQS in the paper).
//!
//! SQS ties the warehouse modules together (architecture Figure 1) and is
//! the fault-tolerance mechanism: "if an instance fails to renew its lease
//! on the message which had caused a task to start, the message becomes
//! available again and another virtual instance will take over the job"
//! (Section 3). The model therefore implements *visibility timeouts*:
//! `receive` hides a message for a lease period rather than removing it;
//! only an explicit `delete` removes it; an expired lease makes the
//! message deliverable again (at-least-once semantics).

use crate::clock::{SimDuration, SimTime};
use std::collections::HashMap;

/// A queued message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Unique receipt handle (per queue).
    pub id: u64,
    /// Payload (the warehouse sends document URIs / query texts).
    pub body: String,
    /// How many times the message has been received (1 on first delivery).
    pub receive_count: u32,
}

#[derive(Debug, Clone)]
struct Stored {
    id: u64,
    body: String,
    /// Invisible until this time (lease), if any.
    invisible_until: Option<SimTime>,
    receive_count: u32,
}

/// Usage counters (every API call is billed `QS$`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SqsStats {
    /// Total API requests: send, receive (including empty receives),
    /// delete and lease renewals.
    pub requests: u64,
    /// Messages sent.
    pub sent: u64,
    /// Messages delivered (receives that returned a message).
    pub delivered: u64,
    /// Messages redelivered after a lease expiry.
    pub redelivered: u64,
}

/// The simulated queue service.
pub struct Sqs {
    queues: HashMap<String, Queue>,
    stats: SqsStats,
    latency: SimDuration,
}

#[derive(Default)]
struct Queue {
    messages: Vec<Stored>,
    /// Tombstones for deleted messages, purged lazily (keeps `delete`
    /// amortized O(1) instead of scanning the whole backlog per call).
    deleted: std::collections::HashSet<u64>,
    next_id: u64,
    closed: bool,
}

impl Queue {
    fn live_len(&self) -> usize {
        self.messages.len() - self.deleted.len()
    }

    fn compact_if_needed(&mut self) {
        if self.deleted.len() > 64 && self.deleted.len() * 2 > self.messages.len() {
            let deleted = std::mem::take(&mut self.deleted);
            self.messages.retain(|m| !deleted.contains(&m.id));
        }
    }
}

impl Sqs {
    /// Creates the service with a default 4 ms request latency.
    pub fn new() -> Sqs {
        Sqs {
            queues: HashMap::new(),
            stats: SqsStats::default(),
            latency: SimDuration::from_millis(4),
        }
    }

    /// Creates a queue (idempotent).
    pub fn create_queue(&mut self, name: &str) {
        self.queues.entry(name.to_string()).or_default();
    }

    fn queue_mut(&mut self, name: &str) -> &mut Queue {
        self.queues
            .get_mut(name)
            .unwrap_or_else(|| panic!("no such queue: {name}"))
    }

    /// Sends a message; returns the virtual completion time.
    pub fn send(&mut self, now: SimTime, queue: &str, body: impl Into<String>) -> SimTime {
        self.stats.requests += 1;
        self.stats.sent += 1;
        let latency = self.latency;
        let q = self.queue_mut(queue);
        assert!(!q.closed, "send on closed queue {queue}");
        let id = q.next_id;
        q.next_id += 1;
        q.messages.push(Stored {
            id,
            body: body.into(),
            invisible_until: None,
            receive_count: 0,
        });
        now + latency
    }

    /// Receives one message, leasing it for `visibility`. Returns `None`
    /// when no message is currently visible (still a billed request).
    pub fn receive(
        &mut self,
        now: SimTime,
        queue: &str,
        visibility: SimDuration,
    ) -> (Option<Message>, SimTime) {
        self.stats.requests += 1;
        let latency = self.latency;
        let q = self.queue_mut(queue);
        // Expiry is exclusive: a lease set (or renewed) to expire at `t`
        // still protects the message to an observer at exactly `t`, so a
        // renewal and a concurrent poll at the same instant cannot race the
        // message away from its healthy holder.
        let deleted = &q.deleted;
        let found = q
            .messages
            .iter_mut()
            .find(|m| !deleted.contains(&m.id) && m.invisible_until.is_none_or(|t| t < now));
        let msg = found.map(|m| {
            m.invisible_until = Some(now + visibility);
            m.receive_count += 1;
            Message {
                id: m.id,
                body: m.body.clone(),
                receive_count: m.receive_count,
            }
        });
        if let Some(m) = &msg {
            self.stats.delivered += 1;
            if m.receive_count > 1 {
                self.stats.redelivered += 1;
            }
        }
        (msg, now + latency)
    }

    /// Deletes a received message by id (completes its processing).
    ///
    /// Model simplification: deletion is by message id, without real SQS's
    /// per-receive receipt handles — a consumer whose lease already
    /// expired could still delete the message out from under the new
    /// holder. The warehouse's crashed actors never act again, so the
    /// pipeline cannot trigger this; callers building other topologies
    /// should not rely on delete-after-expiry being rejected.
    pub fn delete(&mut self, now: SimTime, queue: &str, id: u64) -> SimTime {
        self.stats.requests += 1;
        let latency = self.latency;
        let q = self.queue_mut(queue);
        q.deleted.insert(id);
        q.compact_if_needed();
        now + latency
    }

    /// Renews the lease on a message (the paper's crash-detection
    /// mechanism: a healthy instance renews; a crashed one does not).
    pub fn renew_lease(
        &mut self,
        now: SimTime,
        queue: &str,
        id: u64,
        visibility: SimDuration,
    ) -> SimTime {
        self.stats.requests += 1;
        let latency = self.latency;
        let q = self.queue_mut(queue);
        if !q.deleted.contains(&id) {
            if let Some(m) = q.messages.iter_mut().find(|m| m.id == id) {
                m.invisible_until = Some(now + visibility);
            }
        }
        now + latency
    }

    /// Marks the queue as complete: consumers seeing it empty may stop.
    /// (An orchestration convenience, not an SQS API call; not billed.)
    pub fn close(&mut self, queue: &str) {
        self.queue_mut(queue).closed = true;
    }

    /// Reopens a closed queue for a new work phase.
    pub fn open(&mut self, queue: &str) {
        self.queue_mut(queue).closed = false;
    }

    /// True when the queue is closed and has no messages left (visible or
    /// leased).
    pub fn drained(&self, queue: &str) -> bool {
        self.queues
            .get(queue)
            .map(|q| q.closed && q.live_len() == 0)
            .unwrap_or(false)
    }

    /// Number of messages currently in the queue (visible or leased).
    pub fn len(&self, queue: &str) -> usize {
        self.queues.get(queue).map(|q| q.live_len()).unwrap_or(0)
    }

    /// True if the queue holds no messages.
    pub fn is_empty(&self, queue: &str) -> bool {
        self.len(queue) == 0
    }

    /// Usage counters.
    pub fn stats(&self) -> SqsStats {
        self.stats
    }
}

impl Default for Sqs {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VIS: SimDuration = SimDuration::from_secs(30);

    #[test]
    fn send_receive_delete_lifecycle() {
        let mut sqs = Sqs::new();
        sqs.create_queue("loader");
        let t = sqs.send(SimTime::ZERO, "loader", "doc1.xml");
        let (msg, t) = sqs.receive(t, "loader", VIS);
        let msg = msg.unwrap();
        assert_eq!(msg.body, "doc1.xml");
        assert_eq!(msg.receive_count, 1);
        sqs.delete(t, "loader", msg.id);
        assert!(sqs.is_empty("loader"));
        assert_eq!(sqs.stats().requests, 3);
    }

    #[test]
    fn leased_message_is_invisible_until_timeout() {
        let mut sqs = Sqs::new();
        sqs.create_queue("q");
        sqs.send(SimTime::ZERO, "q", "m");
        let (m1, _) = sqs.receive(SimTime(10), "q", VIS);
        assert!(m1.is_some());
        // Within the lease: invisible.
        let (m2, _) = sqs.receive(SimTime(20), "q", VIS);
        assert!(m2.is_none());
        // After the lease expires (no delete — simulated crash):
        // redelivered. Expiry is exclusive, so strictly after the deadline.
        let after = SimTime(11) + VIS;
        let (m3, _) = sqs.receive(after, "q", VIS);
        let m3 = m3.unwrap();
        assert_eq!(m3.receive_count, 2);
        assert_eq!(sqs.stats().redelivered, 1);
    }

    #[test]
    fn renew_extends_lease() {
        let mut sqs = Sqs::new();
        sqs.create_queue("q");
        sqs.send(SimTime::ZERO, "q", "m");
        let (m, _) = sqs.receive(SimTime::ZERO, "q", VIS);
        let id = m.unwrap().id;
        sqs.renew_lease(SimTime(29_000_000), "q", id, VIS);
        // The original lease would have expired at t=30 s; renewal pushed
        // it to t=59 s.
        let (m2, _) = sqs.receive(SimTime(31_000_000), "q", VIS);
        assert!(m2.is_none());
        let (m3, _) = sqs.receive(SimTime(60_000_000), "q", VIS);
        assert!(m3.is_some());
    }

    #[test]
    fn lease_expiry_is_exclusive() {
        // At the exact expiry instant the holder is still protected, so a
        // same-instant renewal cannot lose a race with another consumer.
        let mut sqs = Sqs::new();
        sqs.create_queue("q");
        sqs.send(SimTime::ZERO, "q", "m");
        let (m, _) = sqs.receive(SimTime::ZERO, "q", VIS);
        let id = m.unwrap().id;
        let deadline = SimTime::ZERO + VIS;
        let (race, _) = sqs.receive(deadline, "q", VIS);
        assert!(
            race.is_none(),
            "message must stay protected at the deadline"
        );
        sqs.renew_lease(deadline, "q", id, VIS);
        let (race, _) = sqs.receive(deadline + SimDuration::from_micros(1), "q", VIS);
        assert!(race.is_none(), "renewal at the deadline holds the lease");
    }

    #[test]
    fn close_and_drained() {
        let mut sqs = Sqs::new();
        sqs.create_queue("q");
        sqs.send(SimTime::ZERO, "q", "m");
        sqs.close("q");
        assert!(!sqs.drained("q"));
        let (m, _) = sqs.receive(SimTime::ZERO, "q", VIS);
        sqs.delete(SimTime::ZERO, "q", m.unwrap().id);
        assert!(sqs.drained("q"));
    }

    #[test]
    fn empty_receive_is_still_billed() {
        let mut sqs = Sqs::new();
        sqs.create_queue("q");
        let (m, _) = sqs.receive(SimTime::ZERO, "q", VIS);
        assert!(m.is_none());
        assert_eq!(sqs.stats().requests, 1);
    }

    #[test]
    fn fifo_order_for_visible_messages() {
        let mut sqs = Sqs::new();
        sqs.create_queue("q");
        sqs.send(SimTime::ZERO, "q", "first");
        sqs.send(SimTime::ZERO, "q", "second");
        let (a, _) = sqs.receive(SimTime::ZERO, "q", VIS);
        let (b, _) = sqs.receive(SimTime::ZERO, "q", VIS);
        assert_eq!(a.unwrap().body, "first");
        assert_eq!(b.unwrap().body, "second");
    }
}
