//! # amada-cloud
//!
//! A from-scratch simulation of the commercial-cloud substrate the paper
//! deploys on (Amazon Web Services, Section 6), sufficient for every
//! behaviour the warehouse and its cost model depend on:
//!
//! * [`s3`] — the file store (documents and query results);
//! * [`dynamodb`] — the key-value index store: composite keys,
//!   multi-valued attributes, binary values, batch APIs, provisioned
//!   throughput with saturation;
//! * [`simpledb`] — the older key-value store used by the paper's \[8\]
//!   baseline: string-only ≤ 1 KB values, slower service;
//! * [`sqs`] — queues with visibility timeouts (at-least-once delivery,
//!   the architecture's crash-tolerance mechanism);
//! * [`ec2`] — virtual instances (large / extra-large) with fractional
//!   hourly billing;
//! * [`sim`] — the discrete-event engine gluing actors (instance cores)
//!   to services over a deterministic virtual clock;
//! * [`workmodel`] — converts real measured work metrics into virtual
//!   compute durations;
//! * [`pricing`] / [`money`] — the paper's Table 3 price constants and
//!   exact picodollar arithmetic;
//! * [`obs`] — an off-by-default span recorder keyed to the virtual
//!   clock (service calls, throttles, actor phases) feeding the
//!   `amada-obs` analysis crate.
//!
//! Everything is deterministic: no wall-clock time, no host randomness.

pub mod clock;
pub mod dynamodb;
pub mod ec2;
pub mod fault;
pub mod kv;
pub mod money;
pub mod obs;
pub mod pricing;
pub mod s3;
pub mod service;
pub mod shard;
pub mod sim;
pub mod simpledb;
pub mod sqs;
pub mod tuning;
pub mod workmodel;

pub use clock::{SimDuration, SimTime};
pub use dynamodb::{DynamoConfig, DynamoDb};
pub use ec2::{BillingGranularity, Ec2, InstanceId, InstanceRecord};
pub use fault::{FaultConfig, FaultInjector};
pub use kv::{KvError, KvItem, KvProfile, KvStats, KvStore, KvValue};
pub use money::Money;
pub use obs::{ActorTag, Ctx, Outcome, Phase, Recorder, ServiceKind, Span};
pub use pricing::{InstanceType, PriceTable};
pub use s3::{ObjectPredicate, S3Error, S3Stats, S3};
pub use shard::ShardPlan;
pub use sim::{Actor, CostReport, CostSnapshot, Engine, KvBackend, StepResult, StorageCost, World};
pub use simpledb::{SimpleDb, SimpleDbConfig};
pub use sqs::{Message, Sqs, SqsError, SqsStats};
pub use tuning::{KvTuning, TunedKvStore};
pub use workmodel::WorkModel;
