//! The key-value store abstraction behind the index store.
//!
//! The paper's index runs on Amazon DynamoDB (current work) or Amazon
//! SimpleDB (the \[8\] baseline it compares against in Tables 7–8). Both
//! expose the same *shape* of API — tables of items addressed by a
//! composite hash + range key, carrying named multi-valued attributes,
//! with `get`/`put`/`batchGet`/`batchPut` operations (paper Section 6,
//! Figure 6) — but differ in limits that matter a great deal to the index
//! encodings:
//!
//! | | DynamoDB | SimpleDB |
//! |---|---|---|
//! | value type | string **or binary** | string only |
//! | max value  | ~64 KB (item cap)     | 1 KB |
//! | max item   | 64 KB                | 256 attribute-values |
//! | batch put  | 25 items             | 25 items |
//! | batch get  | 100 keys             | — (modelled as 1) |
//!
//! The binary-value capability is what lets the DynamoDB backend store the
//! compressed structural-ID lists that make LUI/2LUPI competitive
//! (Section 8.4 credits exactly this for the 1–2 order-of-magnitude
//! speedup over \[8\]).

use crate::clock::SimTime;
use crate::fault::FaultInjector;
use crate::obs::Recorder;
use std::fmt;

/// A value stored under an attribute name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KvValue {
    /// A UTF-8 string value.
    S(String),
    /// A binary value (DynamoDB only).
    B(Vec<u8>),
}

impl KvValue {
    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        match self {
            KvValue::S(s) => s.len(),
            KvValue::B(b) => b.len(),
        }
    }

    /// True when the payload is empty (the paper's ε value).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for binary values.
    pub fn is_binary(&self) -> bool {
        matches!(self, KvValue::B(_))
    }
}

/// One item: a composite primary key plus named multi-valued attributes
/// (paper Figure 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvItem {
    /// Hash key (the index entry key, e.g. `ename`).
    pub hash_key: String,
    /// Range key (a UUID at indexing time, so concurrent writers never
    /// overwrite each other — Section 6).
    pub range_key: String,
    /// `(attribute name, values)` pairs; for index entries the attribute
    /// name is a document URI.
    pub attrs: Vec<(String, Vec<KvValue>)>,
}

impl KvItem {
    /// Total payload size: keys + attribute names + attribute values.
    pub fn byte_size(&self) -> usize {
        self.hash_key.len()
            + self.range_key.len()
            + self
                .attrs
                .iter()
                .map(|(n, vs)| n.len() + vs.iter().map(KvValue::len).sum::<usize>())
                .sum::<usize>()
    }
}

/// Static capabilities and limits of a key-value backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvProfile {
    /// Service name for reports.
    pub name: &'static str,
    /// Whether binary attribute values are supported.
    pub supports_binary: bool,
    /// Maximum size of one attribute value.
    pub max_value_bytes: usize,
    /// Maximum size of one item.
    pub max_item_bytes: usize,
    /// Maximum attribute-value pairs per item.
    pub max_attrs_per_item: usize,
    /// Items per `batch_put` call.
    pub batch_put_limit: usize,
    /// Keys per `batch_get` call.
    pub batch_get_limit: usize,
}

/// Usage counters read by the cost model. `put_ops` / `get_ops` follow the
/// paper's metrics `|op(D, I)|` and `|op(q, D, I)|`: item-granularity puts
/// and key-granularity gets (batching reduces *time*, not billed
/// operations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvStats {
    /// Billed write operations (`IDXput$` each): write *capacity units*
    /// for DynamoDB (its billing is volume-based — which is what makes the
    /// paper's Table 6 DynamoDB charges track index size), attribute-value
    /// pairs for SimpleDB (box usage scales with attribute count).
    pub put_ops: u64,
    /// Billed read operations (`IDXget$` each): read capacity units for
    /// DynamoDB (the paper's Figure 12 DynamoDB charges "reflect the
    /// amount of data extracted for each strategy from the index"),
    /// key look-ups for SimpleDB.
    pub get_ops: u64,
    /// API round trips (informational; batching shrinks this).
    pub api_requests: u64,
    /// Bytes of user data currently stored (the paper's `sr(D, I)`).
    pub raw_bytes: u64,
    /// Store-internal overhead bytes (the paper's `ovh(D, I)`).
    pub overhead_bytes: u64,
    /// Bytes returned by gets.
    pub bytes_read: u64,
    /// Requests rejected by the fault injector
    /// (ProvisionedThroughputExceeded); each one bills a capacity unit
    /// and an API request but moves no data.
    pub throttled: u64,
}

impl KvStats {
    /// Total stored size `s(D, I) = sr + ovh` (paper Section 7.1).
    pub fn stored_bytes(&self) -> u64 {
        self.raw_bytes + self.overhead_bytes
    }
}

/// Errors surfaced by the key-value backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// A value exceeds the backend's per-value limit.
    ValueTooLarge { limit: usize, got: usize },
    /// An item exceeds the backend's per-item limit.
    ItemTooLarge { limit: usize, got: usize },
    /// Too many attribute-value pairs on one item.
    TooManyAttributes { limit: usize, got: usize },
    /// Binary value sent to a string-only backend.
    BinaryNotSupported,
    /// Batch size exceeds the API limit.
    BatchTooLarge { limit: usize, got: usize },
    /// Hash or range key exceeds its limit.
    KeyTooLarge { limit: usize, got: usize },
    /// Operation against a table that was never created.
    NoSuchTable(String),
    /// Provisioned throughput exceeded — the request was throttled
    /// (retryable); the failure response arrives at `available_at`. The
    /// request was still billed.
    Throttled {
        /// When the caller learns about the failure.
        available_at: SimTime,
    },
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::ValueTooLarge { limit, got } => {
                write!(f, "value of {got} bytes exceeds the {limit}-byte limit")
            }
            KvError::ItemTooLarge { limit, got } => {
                write!(f, "item of {got} bytes exceeds the {limit}-byte limit")
            }
            KvError::TooManyAttributes { limit, got } => {
                write!(f, "{got} attribute-values exceed the limit of {limit}")
            }
            KvError::BinaryNotSupported => {
                write!(f, "this store does not support binary values")
            }
            KvError::BatchTooLarge { limit, got } => {
                write!(f, "batch of {got} exceeds the limit of {limit}")
            }
            KvError::KeyTooLarge { limit, got } => {
                write!(f, "key of {got} bytes exceeds the {limit}-byte limit")
            }
            KvError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            KvError::Throttled { available_at } => {
                write!(
                    f,
                    "provisioned throughput exceeded (response at {:?})",
                    available_at
                )
            }
        }
    }
}

impl std::error::Error for KvError {}

/// The index-store interface the warehouse codes against; implemented by
/// [`crate::dynamodb::DynamoDb`] and [`crate::simpledb::SimpleDb`].
pub trait KvStore: Send {
    /// Static limits and capabilities.
    fn profile(&self) -> KvProfile;

    /// Creates a table if it does not exist.
    fn ensure_table(&mut self, table: &str);

    /// Writes up to `batch_put_limit` items in one API call; an item with
    /// an existing (hash, range) key is replaced wholesale (paper
    /// Section 6). Returns the virtual completion time.
    fn batch_put(
        &mut self,
        now: SimTime,
        table: &str,
        items: Vec<KvItem>,
    ) -> Result<SimTime, KvError>;

    /// Deletes items by full `(hash, range)` primary key, up to
    /// `batch_put_limit` keys per API call (deletes ride the write path
    /// and consume write capacity, exactly like real DynamoDB's
    /// `DeleteItem`). Billing mirrors each backend's write billing:
    /// DynamoDB bills the removed item's size in write units (min 1 unit,
    /// charged even when the key does not exist), SimpleDB bills per
    /// removed attribute-value pair (min 1 per key). Deleting an absent
    /// key is an idempotent success — the property that makes retraction
    /// retries and queue redeliveries safe without tombstones. Returns
    /// the virtual completion time.
    fn batch_delete(
        &mut self,
        now: SimTime,
        table: &str,
        keys: &[(String, String)],
    ) -> Result<SimTime, KvError>;

    /// Retrieves all items with the given hash key.
    fn get(
        &mut self,
        now: SimTime,
        table: &str,
        hash_key: &str,
    ) -> Result<(Vec<KvItem>, SimTime), KvError>;

    /// Retrieves all items for up to `batch_get_limit` hash keys in one
    /// API call. Results are concatenated in key order.
    fn batch_get(
        &mut self,
        now: SimTime,
        table: &str,
        hash_keys: &[String],
    ) -> Result<(Vec<KvItem>, SimTime), KvError>;

    /// Usage counters.
    fn stats(&self) -> KvStats;

    /// Installs a fault injector: subsequent operations may fail with
    /// [`KvError::Throttled`]. The default implementation ignores it (a
    /// backend that opts out of fault injection simply never throttles).
    fn set_faults(&mut self, _faults: FaultInjector) {}

    /// Installs a span recorder: subsequent operations are recorded as
    /// [`crate::obs::Span`]s. The default implementation ignores it (a
    /// backend that opts out simply records nothing).
    fn set_recorder(&mut self, _recorder: Recorder) {}

    /// True when a fault injector is installed and active — callers that
    /// must hand over owned data (e.g. `batch_put` payloads) use this to
    /// decide whether to keep a retry copy.
    fn faults_active(&self) -> bool {
        false
    }

    /// Installs a shard plan: subsequent operations queue on per-shard
    /// provisioned capacity routed by hash key. The default implementation
    /// ignores it (a backend that opts out keeps one table-level queue —
    /// billing is identical either way, only service times differ).
    fn set_shard_plan(&mut self, _plan: crate::shard::ShardPlan) {}

    /// Host-side snapshot of every item in every table, sorted by
    /// `(table, hash_key, range_key)`. No request is billed and no
    /// virtual time passes — this exists for tests that compare whole
    /// index contents byte-for-byte.
    fn peek_all(&self) -> Vec<(String, KvItem)>;
}

/// Convenience: a single-item put.
pub fn put_one(
    store: &mut dyn KvStore,
    now: SimTime,
    table: &str,
    item: KvItem,
) -> Result<SimTime, KvError> {
    store.batch_put(now, table, vec![item])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_byte_size_counts_everything() {
        let item = KvItem {
            hash_key: "ename".into(), // 5
            range_key: "u1".into(),   // 2
            attrs: vec![(
                "doc.xml".into(),                                        // 7
                vec![KvValue::S("x".into()), KvValue::B(vec![1, 2, 3])], // 1 + 3
            )],
        };
        assert_eq!(item.byte_size(), 5 + 2 + 7 + 1 + 3);
    }

    #[test]
    fn value_helpers() {
        assert!(KvValue::B(vec![]).is_empty());
        assert!(KvValue::B(vec![0]).is_binary());
        assert!(!KvValue::S("x".into()).is_binary());
        assert_eq!(KvValue::S("abc".into()).len(), 3);
    }

    #[test]
    fn errors_display() {
        let e = KvError::ValueTooLarge {
            limit: 1024,
            got: 2048,
        };
        assert!(e.to_string().contains("1024"));
    }
}
