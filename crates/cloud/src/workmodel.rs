//! The compute work model: converting *measured work metrics* into
//! *virtual compute durations*.
//!
//! The warehouse really executes its computations (parsing, index-entry
//! extraction, twig joins) on the host machine; the discrete-event clock
//! never sees host wall-time. Instead, each computation reports a metric
//! (bytes parsed, entry bytes emitted, candidate nodes processed, …) and
//! this model converts it into virtual seconds on a core of a given ECU
//! rating. That keeps every simulation deterministic while letting the
//! relative costs (and therefore every ratio the paper's evaluation is
//! about) emerge from the real algorithms.
//!
//! Default throughputs are calibrated to the paper's setting — one EC2
//! Compute Unit ≈ a 1.0–1.2 GHz 2007 Xeon running a Java XML stack — so
//! the Table 4 / Table 7 magnitudes land in the right regime.

use crate::clock::SimDuration;

/// Per-ECU throughput constants.
#[derive(Debug, Clone)]
pub struct WorkModel {
    /// XML parsing, MB of source per ECU-second.
    pub parse_mb_per_ecu_sec: f64,
    /// Index-entry extraction and encoding, MB of entry bytes per
    /// ECU-second.
    pub extract_mb_per_ecu_sec: f64,
    /// Pattern evaluation, candidate nodes per ECU-second.
    pub eval_nodes_per_ecu_sec: f64,
    /// Look-up post-processing (intersections, path filtering, ID joins),
    /// index entries per ECU-second.
    pub plan_entries_per_ecu_sec: f64,
    /// Result materialization / serialization, MB per ECU-second.
    pub materialize_mb_per_ecu_sec: f64,
}

impl Default for WorkModel {
    fn default() -> Self {
        WorkModel {
            parse_mb_per_ecu_sec: 3.0,
            extract_mb_per_ecu_sec: 12.0,
            eval_nodes_per_ecu_sec: 250_000.0,
            plan_entries_per_ecu_sec: 400_000.0,
            materialize_mb_per_ecu_sec: 25.0,
        }
    }
}

const MB: f64 = 1024.0 * 1024.0;

impl WorkModel {
    /// Virtual time to parse `bytes` of XML on a core of `ecu` rating.
    pub fn parse(&self, bytes: u64, ecu: f64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / MB / (self.parse_mb_per_ecu_sec * ecu))
    }

    /// Virtual time to extract and encode `entry_bytes` of index entries.
    pub fn extract(&self, entry_bytes: u64, ecu: f64) -> SimDuration {
        SimDuration::from_secs_f64(entry_bytes as f64 / MB / (self.extract_mb_per_ecu_sec * ecu))
    }

    /// Virtual time to evaluate a pattern that touched `nodes` candidates.
    pub fn eval(&self, nodes: u64, ecu: f64) -> SimDuration {
        SimDuration::from_secs_f64(nodes as f64 / (self.eval_nodes_per_ecu_sec * ecu))
    }

    /// Virtual time for look-up post-processing over `entries` entries.
    pub fn plan(&self, entries: u64, ecu: f64) -> SimDuration {
        SimDuration::from_secs_f64(entries as f64 / (self.plan_entries_per_ecu_sec * ecu))
    }

    /// Virtual time to materialize `bytes` of results.
    pub fn materialize(&self, bytes: u64, ecu: f64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / MB / (self.materialize_mb_per_ecu_sec * ecu))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scales_inversely_with_ecu() {
        let m = WorkModel::default();
        let slow = m.parse(3 * 1024 * 1024, 1.0);
        let fast = m.parse(3 * 1024 * 1024, 2.0);
        assert_eq!(slow.micros(), 2 * fast.micros());
        // 3 MB at 3 MB/s/ECU on a 1-ECU core = 1 s.
        assert_eq!(slow.micros(), 1_000_000);
    }

    #[test]
    fn zero_work_takes_zero_time() {
        let m = WorkModel::default();
        assert_eq!(m.parse(0, 2.0), SimDuration::ZERO);
        assert_eq!(m.eval(0, 2.0), SimDuration::ZERO);
    }

    #[test]
    fn nonzero_work_advances_time() {
        let m = WorkModel::default();
        assert!(m.eval(1, 2.0).micros() >= 1);
        assert!(m.plan(1, 2.0).micros() >= 1);
    }
}
