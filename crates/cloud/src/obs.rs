//! Virtual-time observability: a structured event recorder over the
//! simulated cloud.
//!
//! Every billed service call, throttle, retry and actor phase becomes a
//! [`Span`] keyed to the virtual clock: `(service, op, start, end, busy,
//! bytes, capacity units, billed Money, outcome, context)`. The recorder
//! is **off by default** and follows the same contract as the fault
//! injector's zero-rate mode: a disabled recorder is a `None` and every
//! hook is a no-op, so recording can never change virtual outcomes,
//! service times or bills — it only *watches* them (identity-tested in
//! `tests/observability.rs`).
//!
//! Billed amounts are computed inside the recorder from a [`PriceTable`]
//! snapshot taken when recording was enabled; the services stay
//! price-ignorant and keep reporting raw counters to the cost model, so
//! the ledger and the spans are two independent views of the same
//! requests — which is what makes the span/ledger reconciliation tests
//! meaningful.
//!
//! Context tags ([`Ctx`]) are set by whichever actor is currently being
//! stepped (the engine is single-threaded, so the "current context" is
//! well-defined); spans recorded during that step inherit the tag. This is
//! what lets `amada-obs` decompose cost per build phase, per query and per
//! document, in the style of the paper's Figures 9b/9c and 12.

use crate::clock::{SimDuration, SimTime};
use crate::money::Money;
use crate::pricing::PriceTable;
use std::sync::{Arc, Mutex};

/// Which simulated service a span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ServiceKind {
    /// The file store (S3).
    S3,
    /// The index store (DynamoDB or SimpleDB).
    Kv,
    /// The queue service (SQS).
    Sqs,
    /// Virtual instances (EC2) — derived from instance records at export.
    Ec2,
    /// Data leaving the cloud (the "AWSDown" component).
    Egress,
    /// Actor-level phases (not a billed service; spans carry no charge).
    Actor,
}

impl ServiceKind {
    /// All kinds, in report order.
    pub const ALL: [ServiceKind; 6] = [
        ServiceKind::S3,
        ServiceKind::Kv,
        ServiceKind::Sqs,
        ServiceKind::Ec2,
        ServiceKind::Egress,
        ServiceKind::Actor,
    ];

    /// Short label for tables and trace categories.
    pub fn label(self) -> &'static str {
        match self {
            ServiceKind::S3 => "s3",
            ServiceKind::Kv => "kv",
            ServiceKind::Sqs => "sqs",
            ServiceKind::Ec2 => "ec2",
            ServiceKind::Egress => "egress",
            ServiceKind::Actor => "actor",
        }
    }
}

/// How a recorded request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Outcome {
    /// Served normally.
    #[default]
    Ok,
    /// Rejected by the fault injector (billed, no data moved).
    Throttled,
    /// Served but the object did not exist (billed, no data moved).
    Missing,
}

impl Outcome {
    /// Short label for tables and trace arguments.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Throttled => "throttled",
            Outcome::Missing => "missing",
        }
    }
}

/// The warehouse phase a request was issued from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Phase {
    /// Outside any tagged phase.
    #[default]
    Other,
    /// Front-end document upload (steps 1–3).
    Upload,
    /// Index building (steps 4–6).
    Build,
    /// Query processing (steps 9–15).
    Query,
    /// Front-end result retrieval (steps 16–18).
    Frontend,
}

impl Phase {
    /// All phases, in report order.
    pub const ALL: [Phase; 5] = [
        Phase::Upload,
        Phase::Build,
        Phase::Query,
        Phase::Frontend,
        Phase::Other,
    ];

    /// Short label for tables and trace arguments.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Other => "other",
            Phase::Upload => "upload",
            Phase::Build => "build",
            Phase::Query => "query",
            Phase::Frontend => "frontend",
        }
    }
}

/// Which actor issued a request (for trace lanes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActorTag {
    /// Actor family: `"loader"`, `"query"`, `"frontend"`.
    pub kind: &'static str,
    /// Instance index within the registry (lane id in the trace).
    pub instance: usize,
}

/// The context tag attached to every span recorded while it is current.
#[derive(Debug, Clone, Default)]
pub struct Ctx {
    /// Warehouse phase.
    pub phase: Phase,
    /// Query name, while a query is being processed.
    pub query: Option<Arc<str>>,
    /// Document URI, while a document is being uploaded or indexed.
    pub doc: Option<Arc<str>>,
    /// The issuing actor.
    pub actor: Option<ActorTag>,
}

/// One recorded event: a service call, throttle, or actor phase.
#[derive(Debug, Clone)]
pub struct Span {
    /// Service the event belongs to.
    pub service: ServiceKind,
    /// Operation name (`"put"`, `"receive"`, `"lookup_get"`, …).
    pub op: &'static str,
    /// Virtual time the request was issued.
    pub start: SimTime,
    /// Virtual time the response (or failure) was available.
    pub end: SimTime,
    /// Service-queue busy time consumed (zero for unqueued/actor spans).
    pub busy: SimDuration,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Capacity units consumed (the fractional service-time model).
    pub units: f64,
    /// What this request was billed, under the recorder's price table.
    pub billed: Money,
    /// How the request ended.
    pub outcome: Outcome,
    /// Index-store shard that served the request, when the store is
    /// sharded and the shard is determined (`None` otherwise — unsharded
    /// stores, non-KV services, multi-shard batch throttles).
    pub shard: Option<usize>,
    /// Context current when the span was recorded.
    pub ctx: Ctx,
}

impl Span {
    /// A span with no payload, no charge and an `Ok` outcome; chain the
    /// builder methods for the rest.
    pub fn new(
        service: ServiceKind,
        op: &'static str,
        start: SimTime,
        end: SimTime,
        ctx: &Ctx,
    ) -> Span {
        Span {
            service,
            op,
            start,
            end,
            busy: SimDuration::ZERO,
            bytes: 0,
            units: 0.0,
            billed: Money::ZERO,
            outcome: Outcome::Ok,
            shard: None,
            ctx: ctx.clone(),
        }
    }

    /// Sets the bytes moved.
    pub fn bytes(mut self, bytes: u64) -> Span {
        self.bytes = bytes;
        self
    }

    /// Sets the capacity units consumed.
    pub fn units(mut self, units: f64) -> Span {
        self.units = units;
        self
    }

    /// Sets the billed amount.
    pub fn billed(mut self, billed: Money) -> Span {
        self.billed = billed;
        self
    }

    /// Sets the service busy time.
    pub fn busy(mut self, busy: SimDuration) -> Span {
        self.busy = busy;
        self
    }

    /// Sets the outcome.
    pub fn outcome(mut self, outcome: Outcome) -> Span {
        self.outcome = outcome;
        self
    }

    /// Tags the span with the index-store shard that served it.
    pub fn shard(mut self, shard: Option<usize>) -> Span {
        self.shard = shard;
        self
    }

    /// Span duration (`end − start`).
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

#[derive(Debug)]
struct Inner {
    spans: Vec<Span>,
    ctx: Ctx,
    prices: PriceTable,
}

/// The span recorder handed to every service.
///
/// Cloning is cheap and shares the underlying buffer (the `World` installs
/// clones of one recorder into each service). The disabled recorder is a
/// `None`: every method returns immediately without locking, allocating or
/// observing anything, so a world that never enables recording is
/// bit-identical to one built before this module existed.
#[derive(Debug, Clone, Default)]
pub struct Recorder(Option<Arc<Mutex<Inner>>>);

impl Recorder {
    /// The disabled recorder (the default everywhere).
    pub fn off() -> Recorder {
        Recorder(None)
    }

    /// An enabled recorder billing spans under `prices`.
    pub fn enabled(prices: PriceTable) -> Recorder {
        Recorder(Some(Arc::new(Mutex::new(Inner {
            spans: Vec::new(),
            ctx: Ctx::default(),
            prices,
        }))))
    }

    /// True when spans are being collected.
    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Records the span built by `f`, which receives the price table and
    /// the current context. No-op (and `f` never runs) when disabled —
    /// instrumentation sites pay only an `Option` check.
    pub fn record(&self, f: impl FnOnce(&PriceTable, &Ctx) -> Span) {
        if let Some(inner) = &self.0 {
            let mut g = inner.lock().expect("recorder lock");
            let span = f(&g.prices, &g.ctx);
            g.spans.push(span);
        }
    }

    /// Mutates the current context (no-op when disabled). Actors call this
    /// at the top of each engine step so the spans their service calls
    /// produce carry the right phase/query/document tags.
    pub fn with_ctx(&self, f: impl FnOnce(&mut Ctx)) {
        if let Some(inner) = &self.0 {
            f(&mut inner.lock().expect("recorder lock").ctx);
        }
    }

    /// A copy of every span recorded so far (empty when disabled).
    pub fn spans(&self) -> Vec<Span> {
        match &self.0 {
            Some(inner) => inner.lock().expect("recorder lock").spans.clone(),
            None => Vec::new(),
        }
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        match &self.0 {
            Some(inner) => inner.lock().expect("recorder lock").spans.len(),
            None => 0,
        }
    }

    /// The price table spans are billed under (the default table when
    /// disabled).
    pub fn prices(&self) -> PriceTable {
        match &self.0 {
            Some(inner) => inner.lock().expect("recorder lock").prices.clone(),
            None => PriceTable::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_never_runs_the_closure() {
        let rec = Recorder::off();
        assert!(!rec.is_on());
        rec.record(|_, _| unreachable!("off recorder must not build spans"));
        rec.with_ctx(|_| unreachable!("off recorder has no context"));
        assert_eq!(rec.span_count(), 0);
        assert!(rec.spans().is_empty());
    }

    #[test]
    fn clones_share_the_span_buffer() {
        let a = Recorder::enabled(PriceTable::default());
        let b = a.clone();
        b.record(|p, ctx| {
            Span::new(ServiceKind::S3, "put", SimTime::ZERO, SimTime(12), ctx)
                .bytes(42)
                .billed(p.st_put)
        });
        assert_eq!(a.span_count(), 1);
        let spans = a.spans();
        assert_eq!(spans[0].bytes, 42);
        assert_eq!(spans[0].billed, PriceTable::default().st_put);
        assert_eq!(spans[0].duration(), SimDuration::from_micros(12));
    }

    #[test]
    fn context_tags_apply_to_later_spans_only() {
        let rec = Recorder::enabled(PriceTable::default());
        rec.record(|_, ctx| Span::new(ServiceKind::Sqs, "send", SimTime::ZERO, SimTime(1), ctx));
        rec.with_ctx(|c| {
            c.phase = Phase::Query;
            c.query = Some("q7".into());
        });
        rec.record(|_, ctx| Span::new(ServiceKind::Kv, "get", SimTime(1), SimTime(2), ctx));
        let spans = rec.spans();
        assert_eq!(spans[0].ctx.phase, Phase::Other);
        assert!(spans[0].ctx.query.is_none());
        assert_eq!(spans[1].ctx.phase, Phase::Query);
        assert_eq!(spans[1].ctx.query.as_deref(), Some("q7"));
    }
}
