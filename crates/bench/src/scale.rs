//! Experiment scale: how big a corpus the reproduction runs on.

use amada_xmark::CorpusConfig;

/// Corpus scale parameters shared by every experiment.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Number of documents (paper: 20 000).
    pub docs: usize,
    /// Approximate bytes per document (paper: ~2 MB).
    pub doc_bytes: usize,
    /// Corpus seed.
    pub seed: u64,
    /// Workload repetitions for the Figure 10 experiment (paper: 16).
    pub workload_repeats: usize,
}

impl Scale {
    /// The default reproduction scale: 2 000 × ~8 KB documents (the byte
    /// regime where index payloads, not per-item constants, drive the
    /// strategy differences, as at the paper's 2 MB documents).
    pub fn default_scale() -> Scale {
        Scale {
            docs: 2000,
            doc_bytes: 8192,
            seed: 0xA3ADA,
            workload_repeats: 16,
        }
    }

    /// A tiny scale for unit/integration tests (seconds of wall time).
    pub fn tiny() -> Scale {
        Scale {
            docs: 60,
            doc_bytes: 1536,
            seed: 0xA3ADA,
            workload_repeats: 2,
        }
    }

    /// Multiplies the document count by `factor`.
    pub fn scaled(mut self, factor: f64) -> Scale {
        self.docs = ((self.docs as f64 * factor).round() as usize).max(8);
        self
    }

    /// The generator configuration for this scale.
    pub fn corpus_config(&self) -> CorpusConfig {
        CorpusConfig {
            seed: self.seed,
            num_documents: self.docs,
            target_doc_bytes: self.doc_bytes,
            ..Default::default()
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::default_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_multiplies_docs() {
        let s = Scale::default_scale().scaled(0.5);
        assert_eq!(s.docs, 1000);
        assert_eq!(Scale::default_scale().scaled(0.0001).docs, 8);
    }
}
