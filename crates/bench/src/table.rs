//! Minimal aligned text tables for experiment reports.

use std::fmt;

/// A fixed-column text table. The first column is left-aligned, all
/// others right-aligned (the usual convention for numeric reports).
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                let pad = widths[i] - c.chars().count();
                if i == 0 {
                    write!(f, "{c}{}", " ".repeat(pad))?;
                } else {
                    write!(f, "{}{c}", " ".repeat(pad))?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["strategy", "time"]);
        t.row(["LU", "2:11"]);
        t.row(["2LUPI", "7:46"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("strategy"));
        assert!(lines[2].starts_with("LU "));
        assert!(lines[3].ends_with("7:46"));
        // All lines have equal width.
        assert_eq!(lines[0].len(), lines[1].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_is_enforced() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }
}
