//! # amada-bench
//!
//! The reproduction harness: one module per table / figure of the paper's
//! evaluation (Section 8), regenerating the same rows and series over the
//! simulated cloud, plus self-timed microbenchmarks of the hot kernels
//! (`cargo bench -p amada-bench`).
//!
//! Run everything with
//!
//! ```text
//! cargo run -p amada-bench --release --bin repro -- all
//! ```
//!
//! or a single artifact with e.g. `repro table4`, `repro fig9 --scale 2`.
//!
//! ## Scale
//!
//! The paper's corpus is 20 000 XMark documents totalling 40 GB on real
//! AWS hardware; the default reproduction scale is 1/10 the documents at
//! 1/1000 the bytes (2 000 documents ≈ 4 MB), which preserves every
//! *relative* effect the paper reports (strategy orderings, index/no-index
//! gaps, crossover points) while running in seconds. `--scale N`
//! multiplies the document count.

pub mod experiments;
pub mod scale;
pub mod table;

pub use scale::Scale;
pub use table::TextTable;

use amada_core::{IndexBuildReport, Warehouse, WarehouseConfig};
use amada_index::{ExtractOptions, Strategy};
use amada_pattern::Query;

/// Generates the experiment corpus for a scale.
pub fn corpus(scale: &Scale) -> Vec<(String, String)> {
    amada_xmark::generate_corpus(&scale.corpus_config())
        .into_iter()
        .map(|d| (d.uri, d.xml))
        .collect()
}

/// The ten workload queries (paper Section 8.2).
pub fn workload() -> Vec<Query> {
    amada_xmark::workload()
}

/// Builds a warehouse over `docs` with the given configuration, returning
/// it together with the index-build report.
pub fn build_warehouse(
    cfg: WarehouseConfig,
    docs: &[(String, String)],
) -> (Warehouse, IndexBuildReport) {
    let mut w = Warehouse::new(cfg);
    w.upload_documents(docs.iter().map(|(u, x)| (u.clone(), x.clone())));
    let report = w.build_index();
    (w, report)
}

/// Convenience: a default-config warehouse with one strategy and the
/// paper's 8-large loader pool.
pub fn strategy_warehouse(
    strategy: Strategy,
    docs: &[(String, String)],
) -> (Warehouse, IndexBuildReport) {
    build_warehouse(WarehouseConfig::with_strategy(strategy), docs)
}

/// Convenience: a warehouse whose extraction skips full-text word keys
/// (the "without keywords" variant of Figure 8).
pub fn strategy_warehouse_no_words(
    strategy: Strategy,
    docs: &[(String, String)],
) -> (Warehouse, IndexBuildReport) {
    let mut cfg = WarehouseConfig::with_strategy(strategy);
    cfg.extract = ExtractOptions { index_words: false };
    build_warehouse(cfg, docs)
}

/// Formats a byte count as mebibytes with two decimals.
pub fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats seconds with millisecond resolution.
pub fn secs(d: amada_cloud::SimDuration) -> String {
    format!("{:.3}", d.as_secs_f64())
}
