//! `repro` — regenerate the paper's evaluation tables and figures.
//!
//! ```text
//! repro <artifact> [--scale F] [--docs N] [--doc-bytes B] [--repeats R]
//!
//! artifacts:
//!   table4   indexing times per strategy (8 large instances)
//!   fig7     indexing time vs. data size
//!   fig8     index sizes and monthly storage cost (± full-text)
//!   table5   per-query look-up precision and result sizes
//!   fig9     per-query response times + phase decomposition (l / xl)
//!   fig10    workload ×16 on 1 vs. 8 instances
//!   table6   indexing monetary costs by service
//!   fig11    per-query monetary costs
//!   fig12    workload cost decomposition (xl)
//!   fig13    index cost amortization
//!   table7   indexing comparison: SimpleDB [8] vs. DynamoDB
//!   table8   query comparison: SimpleDB [8] vs. DynamoDB
//!   all      everything above, in order
//! ```

use amada_bench::experiments as exp;
use amada_bench::Scale;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print_usage();
        return;
    }
    // Leading non-flag arguments select artifacts (suites are shared
    // across them); flags follow.
    let mut artifacts: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() && !args[i].starts_with("--") {
        artifacts.push(args[i].as_str());
        i += 1;
    }
    let mut scale = Scale::default_scale();
    while i < args.len() {
        let flag = args[i].as_str();
        let value = || -> f64 {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die(&format!("{flag} needs a numeric argument")))
        };
        match flag {
            "--scale" => scale = scale.scaled(value()),
            "--docs" => scale.docs = value() as usize,
            "--doc-bytes" => scale.doc_bytes = value() as usize,
            "--repeats" => scale.workload_repeats = value() as usize,
            other => die(&format!("unknown flag {other}")),
        }
        i += 2;
    }
    eprintln!(
        "# corpus: {} documents x ~{} bytes (paper: 20000 x ~2 MB); seed {:#x}",
        scale.docs, scale.doc_bytes, scale.seed
    );

    let known: &[&str] = &[
        "table4", "fig7", "fig8", "table5", "fig9", "fig10", "table6", "fig11", "fig12",
        "fig13", "table7", "table8", "ablation",
    ];
    let selected: Vec<&str> = if artifacts == ["all"] {
        known.to_vec()
    } else {
        for a in &artifacts {
            if !known.contains(a) {
                die(&format!("unknown artifact '{a}'"));
            }
        }
        artifacts
    };

    // Expensive suites are shared across artifacts that need them.
    let mut indexing: Option<exp::IndexingSuite> = None;
    let mut querying: Option<exp::QuerySuite> = None;
    let mut comparing: Option<exp::ComparisonSuite> = None;
    for artifact in selected {
        let start = Instant::now();
        let body = match artifact {
            "table4" => exp::table4(indexing.get_or_insert_with(|| exp::indexing_suite(&scale)))
                .to_string(),
            "fig7" => exp::fig7(&scale).to_string(),
            "fig8" => exp::fig8(indexing.get_or_insert_with(|| exp::indexing_suite(&scale)))
                .to_string(),
            "table5" => exp::table5(querying.get_or_insert_with(|| exp::query_suite(&scale)))
                .to_string(),
            "fig9" => exp::fig9(querying.get_or_insert_with(|| exp::query_suite(&scale))),
            "fig10" => exp::fig10(&scale).to_string(),
            "table6" => exp::table6(indexing.get_or_insert_with(|| exp::indexing_suite(&scale)))
                .to_string(),
            "fig11" => exp::fig11(querying.get_or_insert_with(|| exp::query_suite(&scale)))
                .to_string(),
            "fig12" => exp::fig12(querying.get_or_insert_with(|| exp::query_suite(&scale)))
                .to_string(),
            "fig13" => exp::fig13(&scale).to_string(),
            "table7" => exp::table7(
                comparing.get_or_insert_with(|| exp::comparison_suite(&scale)),
            )
            .to_string(),
            "table8" => exp::table8(
                comparing.get_or_insert_with(|| exp::comparison_suite(&scale)),
            )
            .to_string(),
            "ablation" => exp::ablation(&scale).to_string(),
            _ => unreachable!("validated above"),
        };
        println!("\n== {} ==\n{body}", title(artifact));
        eprintln!("# {artifact} computed in {:.1}s wall time", start.elapsed().as_secs_f64());
    }
}

fn title(artifact: &str) -> &'static str {
    match artifact {
        "table4" => "Table 4 - indexing times using 8 large (L) instances",
        "fig7" => "Figure 7 - indexing time vs. data size (8 large instances)",
        "fig8" => "Figure 8 - index size and monthly storage cost",
        "table5" => "Table 5 - query processing details (doc IDs from index)",
        "fig9" => "Figure 9 - response times and phase decomposition",
        "fig10" => "Figure 10 - impact of using multiple EC2 instances (workload x16)",
        "table6" => "Table 6 - indexing costs by service",
        "fig11" => "Figure 11 - query processing costs",
        "fig12" => "Figure 12 - workload evaluation cost details (XL instance)",
        "fig13" => "Figure 13 - index cost amortization (single L instance)",
        "table7" => "Table 7 - indexing comparison vs. [8] (SimpleDB)",
        "table8" => "Table 8 - query processing comparison vs. [8] (SimpleDB)",
        "ablation" => "Ablation - binary ID encoding and write batching (beyond the paper)",
        _ => "unknown",
    }
}

fn print_usage() {
    println!(
        "repro - regenerate the paper's tables and figures\n\n\
         usage: repro <artifact> [--scale F] [--docs N] [--doc-bytes B] [--repeats R]\n\n\
         artifacts: table4 fig7 fig8 table5 fig9 fig10 table6 fig11 fig12 fig13 table7 table8 ablation all"
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
