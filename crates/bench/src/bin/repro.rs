//! `repro` — regenerate the paper's evaluation tables and figures.
//!
//! ```text
//! repro <artifact> [--scale F] [--docs N] [--doc-bytes B] [--repeats R]
//!
//! artifacts:
//!   table4   indexing times per strategy (8 large instances)
//!   fig7     indexing time vs. data size
//!   fig8     index sizes and monthly storage cost (± full-text)
//!   table5   per-query look-up precision and result sizes
//!   fig9     per-query response times + phase decomposition (l / xl)
//!   fig10    workload ×16 on 1 vs. 8 instances
//!   table6   indexing monetary costs by service
//!   fig11    per-query monetary costs
//!   fig12    workload cost decomposition (xl)
//!   fig13    index cost amortization
//!   table7   indexing comparison: SimpleDB [8] vs. DynamoDB
//!   table8   query comparison: SimpleDB [8] vs. DynamoDB
//!   trace    recorded pipeline: Chrome trace-event export
//!            (TRACE_repro.json) + span roll-up tables (beyond the paper)
//!   fault    pipeline under transient-fault injection (beyond the paper;
//!            seeded via AMADA_FAULT_SEED, not part of `all`)
//!   scale    elastic queue-depth autoscaling vs. static pools on bursty
//!            traffic (beyond the paper; not part of `all` — the
//!            autoscaled run's timings depend on its own knobs, and `all`
//!            stays byte-comparable to pre-elasticity runs)
//!   pushdown storage-side predicate filtering (LUP-PD) vs. document
//!            shipping, swept across predicate selectivity with the $
//!            crossover (beyond the paper; not part of `all` so `all`
//!            stays byte-comparable to pre-pushdown runs)
//!   churn    Figure 13 under document churn: per-run index maintenance
//!            (incremental rebuild + stale-entry retraction) vs. query
//!            savings, swept across update rates, with the rate at which
//!            the advisor flips to "index nothing" (beyond the paper;
//!            not part of `all` so `all` stays byte-comparable to
//!            pre-churn runs)
//!   shard    skew-aware sharded index vs. one table under an open-loop
//!            hot-key storm: exact p50/p95/p99 virtual latency and $/1k
//!            queries per shard plan (beyond the paper; not part of `all`
//!            so `all` stays byte-comparable to pre-sharding runs)
//!   advise   adaptive attribution-driven advisor vs. every static layout
//!            on a hot/cold/churning horizon under a monthly storage
//!            budget: per-deployment dollars, response times and the
//!            mixed plan adopted (beyond the paper; not part of `all` so
//!            `all` stays byte-comparable to pre-advisor runs)
//!   all      everything above except `fault`, `scale`, `pushdown`,
//!            `churn`, `shard` and `advise`, in order
//! ```
//!
//! A second mode runs the differential correctness harness instead of the
//! paper artifacts:
//!
//! ```text
//! repro check [--seed N[,N...]] [--cases M] [--billing-every K]
//! ```
//!
//! Each seed runs `M` randomized cases through the strategy-equivalence,
//! containment, twig-vs-naive, store round-trip and (sampled) billing
//! oracles of `amada-check`. On a violation the case is shrunk, the
//! reproducer is printed and written to `CHECK_reproducer.txt`, and the
//! process exits non-zero.
//!
//! Artifacts that share an expensive suite (e.g. `table4`/`fig8`/`table6`
//! all need the indexing suite) run sequentially within one host task so
//! the suite is built once; *independent* suites run concurrently, one
//! host thread each. Output order is always the selection order, and the
//! bodies are byte-identical to a sequential run — host threading never
//! touches virtual time. `AMADA_THREADS=1` forces a fully sequential run.
//!
//! Each invocation also writes `BENCH_repro.json` to the working
//! directory: wall-clock seconds per artifact, thread count, and the
//! process-wide extraction-cache hit rate.

use amada_bench::experiments as exp;
use amada_bench::Scale;
use std::time::Instant;

/// `(name, body, wall seconds)` for one computed artifact.
type Computed = (String, String, f64);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print_usage();
        return;
    }
    if args[0] == "check" {
        run_check_mode(&args[1..]);
        return;
    }
    // Leading non-flag arguments select artifacts (suites are shared
    // across them); flags follow.
    let mut artifacts: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() && !args[i].starts_with("--") {
        artifacts.push(args[i].as_str());
        i += 1;
    }
    let mut scale = Scale::default_scale();
    let mut enforce = false;
    while i < args.len() {
        let flag = args[i].as_str();
        // `--enforce` is a boolean flag (no argument).
        if flag == "--enforce" {
            enforce = true;
            i += 1;
            continue;
        }
        let value = || -> f64 {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die(&format!("{flag} needs a numeric argument")))
        };
        match flag {
            "--scale" => scale = scale.scaled(value()),
            "--docs" => scale.docs = value() as usize,
            "--doc-bytes" => scale.doc_bytes = value() as usize,
            "--repeats" => scale.workload_repeats = value() as usize,
            other => die(&format!("unknown flag {other}")),
        }
        i += 2;
    }
    eprintln!(
        "# corpus: {} documents x ~{} bytes (paper: 20000 x ~2 MB); seed {:#x}",
        scale.docs, scale.doc_bytes, scale.seed
    );

    let known: &[&str] = &[
        "table4", "fig7", "fig8", "table5", "fig9", "fig10", "table6", "fig11", "fig12", "fig13",
        "table7", "table8", "ablation", "trace", "fault", "scale", "perf", "pushdown", "churn",
        "shard", "advise",
    ];
    // `all` deliberately leaves `fault` (output depends on
    // AMADA_FAULT_SEED), `scale` (beyond-the-paper elasticity run),
    // `perf` (host wall-clock timings), `pushdown` (beyond-the-paper
    // selectivity sweep), `churn` (beyond-the-paper churn-rate sweep),
    // `shard` (beyond-the-paper open-loop storm) and `advise`
    // (beyond-the-paper adaptive-advisor horizon) out, so `all` stays
    // byte-comparable run to run and release to release.
    let excluded = [
        "fault", "scale", "perf", "pushdown", "churn", "shard", "advise",
    ];
    let selected: Vec<&str> = if artifacts == ["all"] {
        known
            .iter()
            .copied()
            .filter(|a| !excluded.contains(a))
            .collect()
    } else {
        for a in &artifacts {
            if !known.contains(a) {
                die(&format!("unknown artifact '{a}'"));
            }
        }
        artifacts
    };

    let total = Instant::now();
    let computed = compute(&scale, &selected);
    let total_wall = total.elapsed().as_secs_f64();

    // Print in selection order, exactly as a sequential run would.
    for (name, body, wall) in &computed {
        println!("\n== {} ==\n{body}", title(name));
        eprintln!("# {name} computed in {wall:.1}s wall time");
    }

    let threads = amada_par::num_threads();
    eprintln!("# total {total_wall:.1}s wall time on {threads} host thread(s)");
    match write_report(&computed, total_wall, threads, &scale) {
        Ok(path) => eprintln!("# wrote {path}"),
        Err(e) => eprintln!("# warning: could not write BENCH_repro.json: {e}"),
    }
    if enforce {
        match exp::perf::enforce_floors() {
            Ok(msg) => eprintln!("# enforce: {msg}"),
            Err(msg) => {
                eprintln!("error: enforce: {msg}");
                std::process::exit(1);
            }
        }
    }
}

/// Runs every selected artifact, sharing expensive suites within a group
/// and running independent groups concurrently. Results come back in
/// selection order.
fn compute(scale: &Scale, selected: &[&str]) -> Vec<Computed> {
    // Which suite an artifact needs; artifacts with the same suite are
    // grouped onto one task so the suite is built once. `None` means the
    // artifact is self-contained and gets its own task.
    fn suite_of(artifact: &str) -> Option<&'static str> {
        match artifact {
            "table4" | "fig8" | "table6" => Some("indexing"),
            "table5" | "fig9" | "fig11" | "fig12" => Some("querying"),
            "table7" | "table8" => Some("comparison"),
            _ => None,
        }
    }

    let mut groups: Vec<(Option<&'static str>, Vec<&str>)> = Vec::new();
    for &a in selected {
        let key = suite_of(a);
        match groups.iter_mut().find(|(k, _)| k.is_some() && *k == key) {
            Some((_, members)) => members.push(a),
            None => groups.push((key, vec![a])),
        }
    }

    let tasks: Vec<Box<dyn FnOnce() -> Vec<Computed> + Send + '_>> = groups
        .into_iter()
        .map(|(_, members)| {
            let f: Box<dyn FnOnce() -> Vec<Computed> + Send + '_> = Box::new(move || {
                // Suites are built lazily by the first member that needs
                // them (its wall time includes the build, as in a
                // sequential run) and reused by the rest of the group.
                let mut indexing: Option<exp::IndexingSuite> = None;
                let mut querying: Option<exp::QuerySuite> = None;
                let mut comparing: Option<exp::ComparisonSuite> = None;
                members
                    .into_iter()
                    .map(|artifact| {
                        let start = Instant::now();
                        let body = match artifact {
                            "table4" => exp::table4(
                                indexing.get_or_insert_with(|| exp::indexing_suite(scale)),
                            )
                            .to_string(),
                            "fig7" => exp::fig7(scale).to_string(),
                            "fig8" => exp::fig8(
                                indexing.get_or_insert_with(|| exp::indexing_suite(scale)),
                            )
                            .to_string(),
                            "table5" => {
                                exp::table5(querying.get_or_insert_with(|| exp::query_suite(scale)))
                                    .to_string()
                            }
                            "fig9" => {
                                exp::fig9(querying.get_or_insert_with(|| exp::query_suite(scale)))
                            }
                            "fig10" => exp::fig10(scale).to_string(),
                            "table6" => exp::table6(
                                indexing.get_or_insert_with(|| exp::indexing_suite(scale)),
                            )
                            .to_string(),
                            "fig11" => {
                                exp::fig11(querying.get_or_insert_with(|| exp::query_suite(scale)))
                                    .to_string()
                            }
                            "fig12" => {
                                exp::fig12(querying.get_or_insert_with(|| exp::query_suite(scale)))
                                    .to_string()
                            }
                            "fig13" => exp::fig13(scale).to_string(),
                            "table7" => exp::table7(
                                comparing.get_or_insert_with(|| exp::comparison_suite(scale)),
                            )
                            .to_string(),
                            "table8" => exp::table8(
                                comparing.get_or_insert_with(|| exp::comparison_suite(scale)),
                            )
                            .to_string(),
                            "ablation" => exp::ablation(scale).to_string(),
                            "trace" => exp::trace(scale),
                            "fault" => exp::fault(scale).to_string(),
                            "scale" => exp::elastic(scale).to_string(),
                            "perf" => exp::perf(scale),
                            "pushdown" => exp::pushdown(scale).to_string(),
                            "churn" => exp::churn(scale).to_string(),
                            "shard" => exp::shard(scale).to_string(),
                            "advise" => exp::advise(scale).to_string(),
                            _ => unreachable!("validated in main"),
                        };
                        (artifact.to_string(), body, start.elapsed().as_secs_f64())
                    })
                    .collect()
            });
            f
        })
        .collect();

    // par_run caps workers at `num_threads()`, so AMADA_THREADS=1 makes
    // this a plain sequential loop.
    let per_group: Vec<Vec<Computed>> = amada_par::par_run(tasks);

    // Flatten back to selection order.
    let mut by_name: std::collections::HashMap<String, Computed> = per_group
        .into_iter()
        .flatten()
        .map(|c| (c.0.clone(), c))
        .collect();
    selected
        .iter()
        .map(|&a| by_name.remove(a).expect("every artifact computed"))
        .collect()
}

/// Writes `BENCH_repro.json` (hand-rolled JSON; the build environment has
/// no serde). Returns the path written.
fn write_report(
    computed: &[Computed],
    total_wall: f64,
    threads: usize,
    scale: &Scale,
) -> std::io::Result<&'static str> {
    let stats = amada_index::cache::global_stats();
    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"amada-bench-repro/1\",\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!(
        "  \"scale\": {{ \"docs\": {}, \"doc_bytes\": {}, \"workload_repeats\": {} }},\n",
        scale.docs, scale.doc_bytes, scale.workload_repeats
    ));
    json.push_str("  \"artifacts\": [\n");
    for (i, (name, _, wall)) in computed.iter().enumerate() {
        let comma = if i + 1 < computed.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{ \"name\": \"{name}\", \"wall_seconds\": {wall:.6} }}{comma}\n"
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"total_wall_seconds\": {total_wall:.6},\n"));
    let hit_rate = match stats.hit_rate() {
        Some(r) => format!("{r:.6}"),
        None => "null".to_string(),
    };
    json.push_str(&format!(
        "  \"cache\": {{ \"parse_hits\": {}, \"parse_misses\": {}, \"extract_hits\": {}, \
         \"extract_misses\": {}, \"hit_rate\": {} }},\n",
        stats.parse_hits, stats.parse_misses, stats.extract_hits, stats.extract_misses, hit_rate
    ));
    // Zero when the `trace` artifact was not selected.
    json.push_str(&format!(
        "  \"trace\": {{ \"spans\": {}, \"series_buckets\": {} }},\n",
        exp::trace::TRACE_SPANS.load(std::sync::atomic::Ordering::Relaxed),
        exp::trace::TRACE_BUCKETS.load(std::sync::atomic::Ordering::Relaxed)
    ));
    // Zero when the `scale` artifact was not selected.
    json.push_str(&format!(
        "  \"scaling\": {{ \"out_events\": {}, \"in_events\": {}, \"peak_pool\": {} }},\n",
        exp::elastic::SCALE_OUT_EVENTS.load(std::sync::atomic::Ordering::Relaxed),
        exp::elastic::SCALE_IN_EVENTS.load(std::sync::atomic::Ordering::Relaxed),
        exp::elastic::SCALE_PEAK_POOL.load(std::sync::atomic::Ordering::Relaxed)
    ));
    // Zero when the `pushdown` artifact was not selected.
    json.push_str(&format!(
        "  \"pushdown\": {{ \"sweep_points\": {}, \"pushdown_wins\": {}, \"bytes_scanned\": {}, \
         \"bytes_returned\": {} }},\n",
        exp::pushdown::PUSHDOWN_POINTS.load(std::sync::atomic::Ordering::Relaxed),
        exp::pushdown::PUSHDOWN_WINS.load(std::sync::atomic::Ordering::Relaxed),
        exp::pushdown::PUSHDOWN_SCANNED_BYTES.load(std::sync::atomic::Ordering::Relaxed),
        exp::pushdown::PUSHDOWN_RETURNED_BYTES.load(std::sync::atomic::Ordering::Relaxed)
    ));
    // Zero when the `churn` artifact was not selected.
    json.push_str(&format!(
        "  \"churn\": {{ \"sweep_points\": {}, \"strategy_flips\": {}, \"retracted_items\": {}, \
         \"advisor_flip_pct\": {} }},\n",
        exp::churn::CHURN_POINTS.load(std::sync::atomic::Ordering::Relaxed),
        exp::churn::CHURN_FLIPS.load(std::sync::atomic::Ordering::Relaxed),
        exp::churn::CHURN_RETRACTED_ITEMS.load(std::sync::atomic::Ordering::Relaxed),
        exp::churn::CHURN_ADVISOR_FLIP_PCT.load(std::sync::atomic::Ordering::Relaxed)
    ));
    // Zero when the `shard` artifact was not selected.
    json.push_str(&format!(
        "  \"shard\": {{ \"arrivals\": {}, \"single_p99_us\": {}, \"skew_p99_us\": {}, \
         \"single_per_1k_udollars\": {}, \"skew_per_1k_udollars\": {} }},\n",
        exp::shard::SHARD_ARRIVALS.load(std::sync::atomic::Ordering::Relaxed),
        exp::shard::SHARD_SINGLE_P99_US.load(std::sync::atomic::Ordering::Relaxed),
        exp::shard::SHARD_SKEW_P99_US.load(std::sync::atomic::Ordering::Relaxed),
        exp::shard::SHARD_SINGLE_PER1K_UDOLLARS.load(std::sync::atomic::Ordering::Relaxed),
        exp::shard::SHARD_SKEW_PER1K_UDOLLARS.load(std::sync::atomic::Ordering::Relaxed)
    ));
    // Zero when the `advise` artifact was not selected.
    json.push_str(&format!(
        "  \"advise\": {{ \"rounds\": {}, \"adaptive_total_udollars\": {}, \
         \"best_static_total_udollars\": {}, \"adaptive_mean_response_us\": {}, \
         \"best_static_mean_response_us\": {}, \"migrated_docs\": {}, \
         \"confirm_migrated_docs\": {}, \"budget_met\": {} }},\n",
        exp::advise::ADVISE_ROUNDS_RUN.load(std::sync::atomic::Ordering::Relaxed),
        exp::advise::ADVISE_ADAPTIVE_TOTAL_UDOLLARS.load(std::sync::atomic::Ordering::Relaxed),
        exp::advise::ADVISE_BEST_STATIC_TOTAL_UDOLLARS.load(std::sync::atomic::Ordering::Relaxed),
        exp::advise::ADVISE_ADAPTIVE_MEAN_RESPONSE_US.load(std::sync::atomic::Ordering::Relaxed),
        exp::advise::ADVISE_BEST_STATIC_MEAN_RESPONSE_US.load(std::sync::atomic::Ordering::Relaxed),
        exp::advise::ADVISE_MIGRATED_DOCS.load(std::sync::atomic::Ordering::Relaxed),
        exp::advise::ADVISE_CONFIRM_MIGRATED_DOCS.load(std::sync::atomic::Ordering::Relaxed),
        exp::advise::ADVISE_BUDGET_MET.load(std::sync::atomic::Ordering::Relaxed)
    ));
    // Null when the `perf` artifact was not selected.
    json.push_str(&format!(
        "  \"perf\": {}\n",
        exp::perf::perf_json().unwrap_or_else(|| "null".to_string())
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_repro.json", json)?;
    Ok("BENCH_repro.json")
}

fn title(artifact: &str) -> &'static str {
    match artifact {
        "table4" => "Table 4 - indexing times using 8 large (L) instances",
        "fig7" => "Figure 7 - indexing time vs. data size (8 large instances)",
        "fig8" => "Figure 8 - index size and monthly storage cost",
        "table5" => "Table 5 - query processing details (doc IDs from index)",
        "fig9" => "Figure 9 - response times and phase decomposition",
        "fig10" => "Figure 10 - impact of using multiple EC2 instances (workload x16)",
        "table6" => "Table 6 - indexing costs by service",
        "fig11" => "Figure 11 - query processing costs",
        "fig12" => "Figure 12 - workload evaluation cost details (XL instance)",
        "fig13" => "Figure 13 - index cost amortization (single L instance)",
        "table7" => "Table 7 - indexing comparison vs. [8] (SimpleDB)",
        "table8" => "Table 8 - query processing comparison vs. [8] (SimpleDB)",
        "ablation" => "Ablation - binary ID encoding and write batching (beyond the paper)",
        "trace" => {
            "Trace - recorded pipeline, Chrome trace export and span roll-ups (beyond the paper)"
        }
        "fault" => "Fault injection - the pipeline under transient faults (beyond the paper)",
        "scale" => {
            "Scale - elastic autoscaling vs. static pools on bursty traffic (beyond the paper)"
        }
        "perf" => {
            "Perf - hot-path microbenchmarks: parse / tokenize / decode / twig (beyond the paper)"
        }
        "pushdown" => {
            "Pushdown - storage-side filtering vs. document shipping by selectivity (beyond the paper)"
        }
        "churn" => {
            "Churn - index maintenance vs. query savings by update rate (beyond the paper)"
        }
        "shard" => {
            "Shard - skew-aware sharded index vs. one table under an open-loop storm (beyond the paper)"
        }
        "advise" => {
            "Advise - adaptive attribution-driven plan vs. static layouts under a budget (beyond the paper)"
        }
        _ => "unknown",
    }
}

/// `repro check`: the seeded differential correctness harness.
fn run_check_mode(args: &[String]) {
    use amada_check::{run_check, CheckConfig};

    let mut seeds: Vec<u64> = vec![0xA3ADA];
    let mut cases = 200usize;
    let mut billing_every = 10usize;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = || -> &String {
            args.get(i + 1)
                .unwrap_or_else(|| die(&format!("{flag} needs an argument")))
        };
        match flag {
            "--seed" => {
                seeds = value()
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| die(&format!("bad seed '{s}'")))
                    })
                    .collect();
            }
            "--cases" => {
                cases = value()
                    .parse()
                    .unwrap_or_else(|_| die("--cases needs a number"));
            }
            "--billing-every" => {
                billing_every = value()
                    .parse()
                    .unwrap_or_else(|_| die("--billing-every needs a number"));
            }
            other => die(&format!("unknown check flag {other}")),
        }
        i += 2;
    }

    let start = Instant::now();
    for &seed in &seeds {
        let cfg = CheckConfig {
            seed,
            cases,
            billing_every,
            mutation: Default::default(),
        };
        let outcome = run_check(&cfg);
        match outcome.failure {
            None => {
                eprintln!("# seed {seed:#x}: {} cases passed", outcome.cases_passed);
            }
            Some(repro) => {
                let text = repro.to_string();
                println!("{text}");
                match std::fs::write("CHECK_reproducer.txt", &text) {
                    Ok(()) => eprintln!("# wrote CHECK_reproducer.txt"),
                    Err(e) => eprintln!("# warning: could not write CHECK_reproducer.txt: {e}"),
                }
                eprintln!(
                    "# seed {seed:#x}: VIOLATION after {} passing cases",
                    outcome.cases_passed
                );
                std::process::exit(1);
            }
        }
    }
    eprintln!(
        "# check: {} seed(s) x {cases} cases passed in {:.1}s wall time",
        seeds.len(),
        start.elapsed().as_secs_f64()
    );
}

fn print_usage() {
    println!(
        "repro - regenerate the paper's tables and figures\n\n\
         usage: repro <artifact> [--scale F] [--docs N] [--doc-bytes B] [--repeats R] [--enforce]\n\
         \x20      repro check [--seed N[,N...]] [--cases M] [--billing-every K]\n\n\
         artifacts: table4 fig7 fig8 table5 fig9 fig10 table6 fig11 fig12 fig13 table7 table8 ablation trace fault scale perf pushdown churn shard advise all\n\n\
         --enforce (with perf): exit non-zero when a release build regresses more\n\
         than 30% past the repo-pinned parse / tokenize / decode rates or the\n\
         twig-join latency ceiling"
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
