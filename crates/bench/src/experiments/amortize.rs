//! Figure 13: index cost amortization — how many workload runs it takes
//! for the query-cost savings to recover the index building cost, per
//! strategy, on a single large instance.

use crate::{corpus, strategy_warehouse, Scale, TextTable};
use amada_cloud::InstanceType;
use amada_core::{Amortization, Pool};
use amada_index::Strategy;

/// The amortization analysis for every strategy.
pub fn amortizations(scale: &Scale) -> Vec<(Strategy, Amortization)> {
    let docs = corpus(scale);
    let queries = crate::workload();
    let mut out = Vec::new();
    for strategy in Strategy::ALL {
        let (mut w, build) = strategy_warehouse(strategy, &docs);
        w.set_query_pool(Pool::new(1, InstanceType::Large));
        let indexed = w.run_workload(&queries, 1).cost.total();
        let baseline = w.run_workload_no_index(&queries, 1).cost.total();
        out.push((
            strategy,
            Amortization {
                build_cost: build.cost.total(),
                run_cost_no_index: baseline,
                run_cost_indexed: indexed,
            },
        ));
    }
    out
}

/// Paper Figure 13: per strategy, the amortization parameters, the
/// break-even run count, and the curve `runs × benefit − buildingCost`
/// at a few sample points.
pub fn fig13(scale: &Scale) -> TextTable {
    let mut t = TextTable::new([
        "Strategy",
        "Build cost",
        "Run (no index)",
        "Run (indexed)",
        "Benefit/run",
        "Break-even runs",
        "Net @4 runs",
        "Net @8 runs",
        "Net @16 runs",
    ]);
    for (s, a) in amortizations(scale) {
        let curve = a.curve(20);
        let at = |r: usize| format!("${:+.4}", curve[r].net_dollars());
        t.row([
            s.name().to_string(),
            format!("${:.4}", a.build_cost.dollars()),
            format!("${:.4}", a.run_cost_no_index.dollars()),
            format!("${:.4}", a.run_cost_indexed.dollars()),
            format!("${:.4}", a.benefit_per_run().dollars()),
            a.breakeven_runs().map_or("never".into(), |r| r.to_string()),
            at(4),
            at(8),
            at(16),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_strategy_amortizes_and_lu_breaks_even_first() {
        let all = amortizations(&Scale::tiny());
        let runs = |st: Strategy| {
            all.iter()
                .find(|(s, _)| *s == st)
                .unwrap()
                .1
                .breakeven_runs()
                .unwrap_or_else(|| panic!("{st} never breaks even"))
        };
        // The paper's ordering has LU fastest and 2LUPI slowest to
        // recover (Figure 13: 4 runs for LU, 8 for LUP/LUI, 16 for
        // 2LUPI). At this tiny test scale per-item constants blur the
        // LU-vs-LUP and LUI-vs-LUP distinctions, but the extremes must
        // hold: 2LUPI builds two indexes and always recovers last.
        assert!(runs(Strategy::Lu) <= runs(Strategy::TwoLupi));
        assert!(runs(Strategy::Lup) <= runs(Strategy::TwoLupi));
        assert!(runs(Strategy::Lui) <= runs(Strategy::TwoLupi));
    }
}
