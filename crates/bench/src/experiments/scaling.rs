//! Figure 10: the impact of query-processing parallelism — the whole
//! workload repeated 16 times, on 1 vs. 8 EC2 instances, large and
//! extra-large.

use crate::{corpus, strategy_warehouse, Scale, TextTable};
use amada_cloud::{InstanceType, SimDuration};
use amada_core::Pool;
use amada_index::Strategy;
use std::collections::HashMap;

/// One measured cell of the Figure 10 chart.
#[derive(Debug, Clone, Copy)]
pub struct ScalingCell {
    /// Total workload response time.
    pub total_time: SimDuration,
}

/// The Figure 10 measurement grid.
pub struct ScalingGrid {
    /// `(strategy, instance label, instance count)` → cell.
    pub cells: HashMap<(Strategy, &'static str, usize), ScalingCell>,
    /// Repeats used (paper: 16).
    pub repeats: usize,
}

/// Runs the grid.
pub fn scaling_grid(scale: &Scale) -> ScalingGrid {
    let docs = corpus(scale);
    let queries = crate::workload();
    let mut cells = HashMap::new();
    for strategy in Strategy::ALL {
        let (mut w, _) = strategy_warehouse(strategy, &docs);
        for itype in [InstanceType::Large, InstanceType::ExtraLarge] {
            for count in [1usize, 8] {
                w.set_query_pool(Pool::new(count, itype));
                let report = w.run_workload(&queries, scale.workload_repeats);
                cells.insert(
                    (strategy, itype.label(), count),
                    ScalingCell {
                        total_time: report.total_time,
                    },
                );
            }
        }
    }
    ScalingGrid {
        cells,
        repeats: scale.workload_repeats,
    }
}

/// Paper Figure 10: workload time on 1 vs. 8 instances.
pub fn fig10(scale: &Scale) -> TextTable {
    let grid = scaling_grid(scale);
    render(&grid)
}

/// Renders an already-computed grid.
pub fn render(grid: &ScalingGrid) -> TextTable {
    let mut t = TextTable::new([
        "Strategy",
        "Instance",
        "1 instance (s)",
        "8 instances (s)",
        "Speed-up",
    ]);
    for itype in ["l", "xl"] {
        for s in Strategy::ALL {
            let one = grid.cells[&(s, itype, 1)].total_time;
            let eight = grid.cells[&(s, itype, 8)].total_time;
            t.row([
                s.name().to_string(),
                itype.to_uppercase(),
                format!("{:.2}", one.as_secs_f64()),
                format!("{:.2}", eight.as_secs_f64()),
                format!("{:.2}x", one.as_secs_f64() / eight.as_secs_f64().max(1e-9)),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_instances_help_significantly() {
        let grid = scaling_grid(&Scale::tiny());
        for itype in ["l", "xl"] {
            for s in Strategy::ALL {
                let one = grid.cells[&(s, itype, 1)].total_time;
                let eight = grid.cells[&(s, itype, 8)].total_time;
                assert!(
                    eight.micros() * 2 < one.micros(),
                    "{s}/{itype}: 8 instances {eight} vs 1 {one}"
                );
            }
        }
        assert_eq!(render(&grid).len(), 8);
    }
}
