//! Indexing experiments: Table 4 (indexing times), Figure 7 (indexing
//! time vs. data size), Figure 8 (index size and monthly storage cost),
//! Table 6 (indexing monetary costs by service).

use crate::{corpus, mb, strategy_warehouse, strategy_warehouse_no_words, Scale, TextTable};
use amada_core::IndexBuildReport;
use amada_index::Strategy;

/// The four per-strategy index builds every indexing artifact reads from,
/// with and without full-text word keys.
pub struct IndexingSuite {
    /// Scale used.
    pub scale: Scale,
    /// `(strategy, report)` with full-text indexing.
    pub full_text: Vec<(Strategy, IndexBuildReport)>,
    /// `(strategy, report)` without word keys.
    pub no_words: Vec<(Strategy, IndexBuildReport)>,
}

/// Builds the index once per strategy (and once more without keywords).
/// The eight builds are independent warehouses (each owns its own
/// simulated cloud and virtual clock), so they run concurrently across
/// host threads; reports come back in deterministic strategy order.
pub fn indexing_suite(scale: &Scale) -> IndexingSuite {
    let docs = corpus(scale);
    let units: Vec<(Strategy, bool)> = Strategy::ALL
        .iter()
        .map(|&s| (s, true))
        .chain(Strategy::ALL.iter().map(|&s| (s, false)))
        .collect();
    let mut reports = amada_par::par_run(
        units
            .iter()
            .map(|&(s, full)| {
                let docs = &docs;
                move || {
                    if full {
                        (s, strategy_warehouse(s, docs).1)
                    } else {
                        (s, strategy_warehouse_no_words(s, docs).1)
                    }
                }
            })
            .collect(),
    );
    let no_words = reports.split_off(Strategy::ALL.len());
    IndexingSuite {
        scale: scale.clone(),
        full_text: reports,
        no_words,
    }
}

/// Paper Table 4: per-strategy average extraction time, average uploading
/// time and total indexing time on the 8-large loader pool.
pub fn table4(suite: &IndexingSuite) -> TextTable {
    let mut t = TextTable::new([
        "Indexing strategy",
        "Avg extraction time",
        "Avg uploading time",
        "Total time",
    ]);
    for (s, r) in &suite.full_text {
        t.row([
            s.name().to_string(),
            r.avg_extraction_time.to_string(),
            r.avg_upload_time.to_string(),
            r.total_time.to_string(),
        ]);
    }
    t
}

/// Paper Figure 7: total indexing time as the corpus grows (25 % steps) —
/// the paper's linear-scaling result.
pub fn fig7(scale: &Scale) -> TextTable {
    let docs = corpus(scale);
    // 4 quarters × 4 strategies: 16 independent warehouses, run
    // concurrently; the table is assembled in deterministic order after.
    let units: Vec<(usize, Strategy)> = (1..=4)
        .flat_map(|quarter| Strategy::ALL.iter().map(move |&s| (quarter, s)))
        .collect();
    let times = amada_par::par_run(
        units
            .iter()
            .map(|&(quarter, s)| {
                let prefix = &docs[..docs.len() * quarter / 4];
                move || strategy_warehouse(s, prefix).1.total_time
            })
            .collect(),
    );
    let mut t = TextTable::new(["Documents size (MB)", "LU", "LUP", "LUI", "2LUPI"]);
    for quarter in 1..=4 {
        let n = docs.len() * quarter / 4;
        let bytes: u64 = docs[..n].iter().map(|(_, x)| x.len() as u64).sum();
        let mut cells = vec![mb(bytes)];
        for (i, _) in units.iter().enumerate() {
            if units[i].0 == quarter {
                cells.push(format!("{:.1}s", times[i].as_secs_f64()));
            }
        }
        t.row(cells);
    }
    t
}

/// Paper Figure 8: index size (content + store overhead) against the XML
/// size, and the monthly storage cost, with and without full-text keys.
pub fn fig8(suite: &IndexingSuite) -> TextTable {
    let mut t = TextTable::new([
        "Variant / strategy",
        "XML data (MB)",
        "Index content (MB)",
        "Store overhead (MB)",
        "Storage cost ($/month)",
    ]);
    for (label, reports) in [
        ("full-text", &suite.full_text),
        ("no keywords", &suite.no_words),
    ] {
        for (s, r) in reports.iter() {
            t.row([
                format!("{label} {}", s.name()),
                mb(r.corpus_bytes),
                mb(r.index_raw_bytes),
                mb(r.index_overhead_bytes),
                format!("{:.6}", r.storage.total().dollars()),
            ]);
        }
    }
    t
}

/// Paper Table 6: indexing monetary cost per strategy, decomposed across
/// services (DynamoDB / EC2 / S3 + SQS / total).
pub fn table6(suite: &IndexingSuite) -> TextTable {
    let mut t = TextTable::new(["Indexing strategy", "DynamoDB", "EC2", "S3 + SQS", "Total"]);
    for (s, r) in &suite.full_text {
        let c = &r.cost;
        t.row([
            s.name().to_string(),
            format!("${:.6}", c.kv.dollars()),
            format!("${:.6}", c.ec2.dollars()),
            format!("${:.6}", (c.s3 + c.sqs).dollars()),
            format!("${:.6}", c.total().dollars()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite() -> IndexingSuite {
        indexing_suite(&Scale::tiny())
    }

    #[test]
    fn table4_shape_lu_fastest_2lupi_slowest() {
        let s = suite();
        let time = |st: Strategy| {
            s.full_text
                .iter()
                .find(|(x, _)| *x == st)
                .unwrap()
                .1
                .total_time
        };
        assert!(time(Strategy::Lu) < time(Strategy::Lup), "LU < LUP");
        assert!(time(Strategy::Lu) < time(Strategy::Lui), "LU < LUI");
        assert!(time(Strategy::Lup) < time(Strategy::TwoLupi), "LUP < 2LUPI");
        assert!(time(Strategy::Lui) < time(Strategy::TwoLupi), "LUI < 2LUPI");
        assert_eq!(table4(&s).len(), 4);
    }

    #[test]
    fn fig8_shape_index_size_order_and_fulltext_blowup() {
        let s = suite();
        let size = |reports: &[(Strategy, amada_core::IndexBuildReport)], st: Strategy| {
            reports
                .iter()
                .find(|(x, _)| *x == st)
                .unwrap()
                .1
                .index_raw_bytes
        };
        // LU < LUI < LUP < 2LUPI in index content (paper Figure 8: LUP and
        // 2LUPI are the larger indexes; LUI is smaller than LUP because
        // IDs are more compact than paths).
        assert!(size(&s.full_text, Strategy::Lu) < size(&s.full_text, Strategy::Lui));
        assert!(size(&s.full_text, Strategy::Lui) < size(&s.full_text, Strategy::Lup));
        assert!(size(&s.full_text, Strategy::Lup) < size(&s.full_text, Strategy::TwoLupi));
        // Full-text indexes are much larger than keyword-free ones.
        for st in Strategy::ALL {
            assert!(size(&s.full_text, st) > size(&s.no_words, st), "{st}");
        }
    }

    #[test]
    fn table6_shape_kv_dominates_and_orders_match_paper() {
        let s = suite();
        let cost = |st: Strategy| s.full_text.iter().find(|(x, _)| *x == st).unwrap().1.cost;
        // Cheapest LU, costliest 2LUPI (paper Table 6).
        assert!(cost(Strategy::Lu).total() < cost(Strategy::Lup).total());
        assert!(cost(Strategy::Lup).total() < cost(Strategy::TwoLupi).total());
        assert!(cost(Strategy::Lu).total() < cost(Strategy::Lui).total());
    }

    #[test]
    fn fig7_is_monotone_in_corpus_size() {
        let table = fig7(&Scale::tiny());
        assert_eq!(table.len(), 4);
    }
}
