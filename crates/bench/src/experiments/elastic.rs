//! The elastic-scaling experiment (beyond the paper's figures): bursty
//! query traffic on a static pool floor, a static pool ceiling, and a
//! queue-depth autoscaled pool between the two.
//!
//! The paper provisions a fixed pool per experiment and bills
//! `VM$_h × t`; its conclusion points at elasticity as the cloud's real
//! promise. This experiment quantifies that: three bursts of the workload
//! released a fixed virtual gap apart, sized per [`Scale`] so that a
//! burst overwhelms one instance but a gap outlasts eight (see
//! [`profile`]). The static floor (1 instance) is
//! cheap but slow — bursts queue up behind it. The static ceiling
//! (8 instances) is fast but pays 8 instance-clocks through every idle
//! gap. The autoscaled pool samples the queue depth (each probe a billed
//! SQS request), grows into each burst — paying the modeled boot latency
//! — and drains back to the floor behind it, freezing each victim's
//! billing window at its last useful instant. It should land near the
//! ceiling's time at a fraction of its dollars; the tests pin both
//! inequalities, and the autoscaler's decisions are reported as scale
//! events.

use crate::{corpus, strategy_warehouse, Scale, TextTable};
use amada_cloud::{InstanceType, Money, SimDuration};
use amada_core::{AutoscalePolicy, Pool, ScaleDirection, Warehouse};
use amada_index::Strategy;
use std::sync::atomic::{AtomicU64, Ordering};

/// Scale-out decisions of the autoscaled run (for `BENCH_repro.json`).
pub static SCALE_OUT_EVENTS: AtomicU64 = AtomicU64::new(0);
/// Scale-in decisions of the autoscaled run.
pub static SCALE_IN_EVENTS: AtomicU64 = AtomicU64::new(0);
/// Peak active pool size the autoscaler reached.
pub static SCALE_PEAK_POOL: AtomicU64 = AtomicU64::new(0);

/// Pool floor shared by the static-min and autoscaled rows.
pub const POOL_MIN: usize = 1;
/// Pool ceiling shared by the static-max and autoscaled rows.
pub const POOL_MAX: usize = 8;
/// Bursts released per run.
pub const BURSTS: usize = 3;

/// Burst shape and control-loop parameters for one run.
///
/// The experiment only separates the three rows when a burst saturates
/// the floor (per-burst work on one instance exceeds the gap) while the
/// gap still outlasts the ceiling's burst time plus the autoscaler's
/// boot and sampling latency. Per-query time differs by ~30x between
/// [`Scale::tiny`] and the default scale (fig. 10: ~0.1 s vs ~3.3 s on
/// a Large instance), so the shape is derived from the scale.
#[derive(Debug, Clone, Copy)]
pub struct ElasticProfile {
    /// Workload repeats per burst.
    pub repeats: usize,
    /// Gap between burst release instants.
    pub gap: SimDuration,
    /// The autoscaling policy under test.
    pub policy: AutoscalePolicy,
}

/// Burst profile for `scale`.
pub fn profile(scale: &Scale) -> ElasticProfile {
    if scale.workload_repeats >= 16 {
        // Default scale: ~3.3 s/query. A 160-query burst holds one
        // instance for ~9 minutes; a 150 s gap dwarfs the ceiling's
        // ~70 s burst time plus 8 s boot.
        ElasticProfile {
            repeats: scale.workload_repeats,
            gap: SimDuration::from_secs(150),
            policy: AutoscalePolicy {
                min: POOL_MIN,
                max: POOL_MAX,
                sample_interval: SimDuration::from_secs(5),
                backlog_per_instance: 4,
                boot_latency: SimDuration::from_secs(8),
            },
        }
    } else {
        // Tiny scale: ~0.1 s/query, so bursts are densified 16x and the
        // control loop compressed to keep the same ordering: a ~30 s
        // burst on the floor vs a 20 s gap vs ~4 s on the ceiling.
        ElasticProfile {
            repeats: scale.workload_repeats * 16,
            gap: SimDuration::from_secs(20),
            policy: AutoscalePolicy {
                min: POOL_MIN,
                max: POOL_MAX,
                sample_interval: SimDuration::from_secs(2),
                backlog_per_instance: 4,
                boot_latency: SimDuration::from_secs(3),
            },
        }
    }
}

/// One measured run of the burst workload.
#[derive(Debug, Clone)]
pub struct ElasticRow {
    /// Row label ("static 1", "static 8", "autoscaled 1-8").
    pub label: String,
    /// Workload wall-clock time.
    pub total_time: SimDuration,
    /// EC2 charges for the run.
    pub ec2: Money,
    /// SQS charges (includes the autoscaler's billed depth probes).
    pub sqs: Money,
    /// Total charges for the run.
    pub total: Money,
    /// Scale-out decisions.
    pub scale_out: usize,
    /// Scale-in decisions.
    pub scale_in: usize,
    /// Peak active pool size.
    pub peak_pool: usize,
    /// Instances launched during the run.
    pub launched: usize,
    /// Queries completed.
    pub queries_done: usize,
}

fn run_bursts(w: &mut Warehouse, label: &str, prof: &ElasticProfile) -> ElasticRow {
    let queries = crate::workload();
    let report = w.run_workload_bursts(&queries, prof.repeats, BURSTS, prof.gap);
    let out = report
        .scale_events
        .iter()
        .filter(|e| e.direction == ScaleDirection::Out)
        .count();
    let in_ = report.scale_events.len() - out;
    let peak = report
        .scale_events
        .iter()
        .map(|e| e.pool_size)
        .max()
        .unwrap_or(w.config().query_pool.count);
    ElasticRow {
        label: label.to_string(),
        total_time: report.total_time,
        ec2: report.cost.ec2,
        sqs: report.cost.sqs,
        total: report.cost.total(),
        scale_out: out,
        scale_in: in_,
        peak_pool: peak,
        launched: out + initial_pool(w),
        queries_done: report.executions.len(),
    }
}

/// Instances provisioned up-front for the run: the configured pool when
/// static, the policy floor when autoscaled.
fn initial_pool(w: &Warehouse) -> usize {
    match w.config().query_autoscale {
        Some(p) => p.min,
        None => w.config().query_pool.count,
    }
}

/// Runs the three configurations over one shared index.
pub fn elastic_rows(scale: &Scale) -> Vec<ElasticRow> {
    let prof = profile(scale);
    let docs = corpus(scale);
    let (mut w, _) = strategy_warehouse(Strategy::Lup, &docs);
    let mut rows = Vec::new();

    w.set_query_pool(Pool::new(POOL_MIN, InstanceType::Large));
    rows.push(run_bursts(&mut w, &format!("static {POOL_MIN}"), &prof));

    w.set_query_pool(Pool::new(POOL_MAX, InstanceType::Large));
    rows.push(run_bursts(&mut w, &format!("static {POOL_MAX}"), &prof));

    w.set_query_pool(Pool::new(POOL_MIN, InstanceType::Large));
    w.set_query_autoscale(Some(prof.policy));
    let row = run_bursts(&mut w, &format!("autoscaled {POOL_MIN}-{POOL_MAX}"), &prof);
    SCALE_OUT_EVENTS.store(row.scale_out as u64, Ordering::Relaxed);
    SCALE_IN_EVENTS.store(row.scale_in as u64, Ordering::Relaxed);
    SCALE_PEAK_POOL.store(row.peak_pool as u64, Ordering::Relaxed);
    rows.push(row);
    w.set_query_autoscale(None);
    rows
}

/// The `repro scale` artifact.
pub fn elastic(scale: &Scale) -> TextTable {
    render(&elastic_rows(scale))
}

/// Renders already-computed rows.
pub fn render(rows: &[ElasticRow]) -> TextTable {
    let mut t = TextTable::new([
        "Query pool",
        "Time (s)",
        "EC2 ($)",
        "SQS ($)",
        "Total ($)",
        "Scale-out",
        "Scale-in",
        "Peak pool",
        "Launched",
    ]);
    for r in rows {
        t.row([
            r.label.clone(),
            format!("{:.2}", r.total_time.as_secs_f64()),
            format!("${:.6}", r.ec2.dollars()),
            format!("${:.6}", r.sqs.dollars()),
            format!("${:.6}", r.total.dollars()),
            r.scale_out.to_string(),
            r.scale_in.to_string(),
            r.peak_pool.to_string(),
            r.launched.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autoscaling_beats_the_floor_on_time_and_the_ceiling_on_dollars() {
        let scale = Scale::tiny();
        let rows = elastic_rows(&scale);
        assert_eq!(rows.len(), 3);
        let (floor, ceiling, auto_) = (&rows[0], &rows[1], &rows[2]);
        let expected = crate::workload().len() * profile(&scale).repeats * BURSTS;
        for r in &rows {
            assert_eq!(r.queries_done, expected, "{}", r.label);
        }
        // Static rows never scale.
        assert_eq!(floor.scale_out + floor.scale_in, 0);
        assert_eq!(ceiling.scale_out + ceiling.scale_in, 0);
        assert_eq!(floor.launched, POOL_MIN);
        assert_eq!(ceiling.launched, POOL_MAX);
        // The autoscaler reacted to the bursts and drained behind them.
        assert!(auto_.scale_out > 0, "bursts must trigger scale-out");
        assert!(auto_.scale_in > 0, "gaps must trigger scale-in");
        assert!(auto_.peak_pool > POOL_MIN);
        assert!(auto_.peak_pool <= POOL_MAX);
        assert_eq!(auto_.launched, POOL_MIN + auto_.scale_out);
        // The headline inequalities: elastic is faster than the floor and
        // cheaper than the ceiling.
        assert!(
            auto_.total_time < floor.total_time,
            "autoscaled {} vs static floor {}",
            auto_.total_time,
            floor.total_time
        );
        assert!(
            auto_.total < ceiling.total,
            "autoscaled {} vs static ceiling {}",
            auto_.total,
            ceiling.total
        );
        // Depth probes are billed: the autoscaled run pays more SQS than
        // the ceiling run moved the same messages for.
        assert!(auto_.sqs > Money::ZERO);
    }

    #[test]
    fn same_scale_same_table() {
        let scale = Scale::tiny();
        let a = render(&elastic_rows(&scale));
        let b = render(&elastic_rows(&scale));
        assert_eq!(a.to_string(), b.to_string());
    }
}
