//! The sharded-index / open-loop-traffic experiment (`repro shard`,
//! beyond the paper's figures).
//!
//! The paper's Figure 10 shows DynamoDB provisioned throughput as the
//! indexing bottleneck; at query time the same table-level limit is what
//! a traffic storm saturates. This experiment drives one warehouse with
//! a seeded open-loop arrival process — bursty, diurnally modulated,
//! Zipf-skewed over the workload queries so a handful of hot index keys
//! absorb most look-ups — and measures, per shard configuration:
//!
//! * exact per-arrival virtual-latency percentiles (p50/p95/p99, from
//!   the recorded span envelope of each uniquely-named arrival), and
//! * dollars per 1 000 queries (all services, from the run's ledger).
//!
//! The single-table row queues every read behind one provisioned-rate
//! lane and saturates: arrivals keep coming open-loop, the backlog
//! grows, p99 explodes — and the stretched run bills *more* EC2 time,
//! so saturation costs more per query too. The sharded rows split the
//! same provisioned rate-per-shard across independent lanes; the
//! skew-aware plan additionally pins the hottest hash keys (measured
//! from the built index) to dedicated shards so the cold tail never
//! queues behind them. Billed capacity units are identical in every row
//! — sharding changes *where* requests wait, never what they cost in
//! Table 3 terms (pinned by `tests/sharding.rs`).

use crate::{build_warehouse, corpus, Scale, TextTable};
use amada_cloud::{DynamoConfig, InstanceType, KvBackend, Money, ShardPlan, SimDuration};
use amada_core::{ArrivalProcess, Pool, Warehouse, WarehouseConfig};
use amada_index::{hottest_keys, lookup::query_paths, ExtractOptions, Strategy, TABLE_MAIN};
use amada_obs::LatencySummary;
use amada_pattern::Query;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// p99 virtual latency (µs) of the single-table row.
pub static SHARD_SINGLE_P99_US: AtomicU64 = AtomicU64::new(0);
/// p99 virtual latency (µs) of the skew-aware sharded row.
pub static SHARD_SKEW_P99_US: AtomicU64 = AtomicU64::new(0);
/// $/1k queries (micro-dollars) of the single-table row.
pub static SHARD_SINGLE_PER1K_UDOLLARS: AtomicU64 = AtomicU64::new(0);
/// $/1k queries (micro-dollars) of the skew-aware sharded row.
pub static SHARD_SKEW_PER1K_UDOLLARS: AtomicU64 = AtomicU64::new(0);
/// Arrivals released per row.
pub static SHARD_ARRIVALS: AtomicU64 = AtomicU64::new(0);

/// Total shards in the sharded rows.
pub const SHARDS: usize = 4;
/// Hot keys pinned to dedicated shards in the skew-aware row.
pub const HOT_SHARDS: usize = 2;

/// Storm shape and provisioning for one scale.
#[derive(Debug, Clone)]
pub struct ShardProfile {
    /// Provisioned read units/sec — per table for the single row, per
    /// *shard* for the sharded rows (each shard is an independently
    /// provisioned partition, the real-DynamoDB semantics).
    pub read_units_per_sec: f64,
    /// Query-processor instances (enough concurrency that the KV read
    /// lane, not the pool, is the bottleneck).
    pub pool: usize,
    /// The open-loop storm.
    pub process: ArrivalProcess,
}

/// Storm profile for `scale`: the arrival rate is chosen so the hot-key
/// read load exceeds one table-level lane but fits comfortably within
/// [`SHARDS`] per-shard lanes.
pub fn profile(scale: &Scale) -> ShardProfile {
    let arrivals = if scale.workload_repeats >= 16 {
        600
    } else {
        150
    };
    ShardProfile {
        read_units_per_sec: 12.0,
        pool: 8,
        process: ArrivalProcess {
            seed: 0xA3ADA5EED,
            arrivals,
            base_rate_per_sec: 4.0,
            diurnal_amplitude: 0.4,
            diurnal_period: SimDuration::from_secs(40),
            burst_every: SimDuration::from_secs(15),
            burst_len: SimDuration::from_secs(5),
            burst_factor: 8.0,
            zipf_exponent: 1.2,
        },
    }
}

/// One measured shard configuration.
#[derive(Debug, Clone)]
pub struct ShardRow {
    /// Row label ("single table", "hashed 4", …).
    pub label: String,
    /// Total shards serving each table.
    pub shards: usize,
    /// Arrivals completed (all of them — open-loop never drops).
    pub completed: usize,
    /// Median virtual latency.
    pub p50: SimDuration,
    /// 95th-percentile virtual latency.
    pub p95: SimDuration,
    /// 99th-percentile virtual latency.
    pub p99: SimDuration,
    /// Workload wall-clock (first send to last completion).
    pub total_time: SimDuration,
    /// All charges for the run.
    pub cost: Money,
    /// Dollars per 1 000 queries.
    pub per_1k: f64,
}

fn run_row(
    w: &mut Warehouse,
    label: &str,
    plan: Option<ShardPlan>,
    process: &ArrivalProcess,
) -> ShardRow {
    let shards = plan.as_ref().map(ShardPlan::shards).unwrap_or(1);
    w.set_shard_plan(plan);
    let span_base = w.spans().len();
    let queries = crate::workload();
    let report = w.run_workload_open_loop(&queries, process);
    let spans = w.spans();
    let lat = LatencySummary::from_spans(&spans[span_base..]);
    let dollars = report.cost.total().dollars();
    ShardRow {
        label: label.to_string(),
        shards,
        completed: report.executions.len(),
        p50: lat.p50,
        p95: lat.p95,
        p99: lat.p99,
        total_time: report.total_time,
        cost: report.cost.total(),
        per_1k: dollars / process.arrivals as f64 * 1000.0,
    }
}

/// Predicted read load per main-table hash key under the storm: each
/// workload query's Zipf share times the stored bytes its LUP look-up
/// fetches from each of its terminal keys. Both inputs are free and
/// deterministic — the built index (host-side peek) and the arrival
/// process's own rank weights — so the plan needs no profiling run.
fn storm_key_load(
    w: &mut Warehouse,
    queries: &[Query],
    process: &ArrivalProcess,
    opts: ExtractOptions,
) -> BTreeMap<String, u64> {
    let mut bytes: BTreeMap<String, u64> = BTreeMap::new();
    for (table, item) in w.engine_mut().world.kv.peek_all() {
        if table == TABLE_MAIN {
            *bytes.entry(item.hash_key.clone()).or_default() += item.byte_size() as u64;
        }
    }
    // The same Zipf ranks the arrival process draws from (rank = position
    // in the workload, weight ∝ 1/(rank+1)^s).
    let weights: Vec<f64> = (0..queries.len())
        .map(|r| 1.0 / ((r + 1) as f64).powf(process.zipf_exponent))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut load: BTreeMap<String, u64> = BTreeMap::new();
    for (rank, q) in queries.iter().enumerate() {
        let share = weights[rank] / total;
        let keys: BTreeSet<String> = q
            .patterns
            .iter()
            .flat_map(|p| query_paths(p, opts))
            .map(|qp| qp.last().expect("query paths are non-empty").1.clone())
            .collect();
        for k in keys {
            let b = bytes.get(&k).copied().unwrap_or(0);
            *load.entry(k).or_default() += (share * b as f64 * 1000.0) as u64;
        }
    }
    load
}

/// Runs the storm against every shard configuration over one shared
/// warehouse and index.
pub fn shard_rows(scale: &Scale) -> Vec<ShardRow> {
    let prof = profile(scale);
    let docs = corpus(scale);
    let mut cfg = WarehouseConfig::with_strategy(Strategy::Lup);
    cfg.backend = KvBackend::Dynamo(DynamoConfig {
        read_units_per_sec: prof.read_units_per_sec,
        ..DynamoConfig::default()
    });
    cfg.query_pool = Pool::new(prof.pool, InstanceType::Large);
    cfg.host.record = true;
    let extract = cfg.extract;
    let (mut w, _) = build_warehouse(cfg, &docs);
    let queries = crate::workload();
    let load = storm_key_load(&mut w, &queries, &prof.process, extract);
    let hot = hottest_keys(&load, HOT_SHARDS);

    let mut rows = Vec::new();
    rows.push(run_row(&mut w, "single table", None, &prof.process));
    rows.push(run_row(
        &mut w,
        &format!("hashed {SHARDS}"),
        Some(ShardPlan::hashed(SHARDS)),
        &prof.process,
    ));
    let skew = run_row(
        &mut w,
        &format!("skew-aware {SHARDS}"),
        Some(ShardPlan::with_hot_keys(SHARDS - hot.len(), hot)),
        &prof.process,
    );
    let single = &rows[0];
    SHARD_SINGLE_P99_US.store(single.p99.micros(), Ordering::Relaxed);
    SHARD_SKEW_P99_US.store(skew.p99.micros(), Ordering::Relaxed);
    SHARD_SINGLE_PER1K_UDOLLARS.store((single.per_1k * 1e6) as u64, Ordering::Relaxed);
    SHARD_SKEW_PER1K_UDOLLARS.store((skew.per_1k * 1e6) as u64, Ordering::Relaxed);
    SHARD_ARRIVALS.store(prof.process.arrivals as u64, Ordering::Relaxed);
    rows.push(skew);
    w.set_shard_plan(None);
    rows
}

/// The `repro shard` artifact.
pub fn shard(scale: &Scale) -> TextTable {
    render(&shard_rows(scale))
}

/// Renders already-computed rows.
pub fn render(rows: &[ShardRow]) -> TextTable {
    let mut t = TextTable::new([
        "Index store",
        "Shards",
        "Completed",
        "p50 (s)",
        "p95 (s)",
        "p99 (s)",
        "Time (s)",
        "Total ($)",
        "$/1k queries",
    ]);
    for r in rows {
        t.row([
            r.label.clone(),
            r.shards.to_string(),
            r.completed.to_string(),
            format!("{:.3}", r.p50.as_secs_f64()),
            format!("{:.3}", r.p95.as_secs_f64()),
            format!("{:.3}", r.p99.as_secs_f64()),
            format!("{:.2}", r.total_time.as_secs_f64()),
            format!("${:.6}", r.cost.dollars()),
            format!("${:.6}", r.per_1k),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_aware_sharding_survives_the_storm_the_single_table_cannot() {
        let scale = Scale::tiny();
        let rows = shard_rows(&scale);
        assert_eq!(rows.len(), 3);
        let (single, hashed, skew) = (&rows[0], &rows[1], &rows[2]);
        let arrivals = profile(&scale).process.arrivals;
        for r in &rows {
            assert_eq!(
                r.completed, arrivals,
                "{}: open-loop drops nothing",
                r.label
            );
        }
        assert_eq!(single.shards, 1);
        assert_eq!(hashed.shards, SHARDS);
        assert_eq!(skew.shards, SHARDS);
        // The headline: under the hot-key storm the skew-aware sharded
        // config completes with bounded p99 while the single table
        // saturates — strictly worse p99 at equal or higher $/1k.
        assert!(
            single.p99 > skew.p99,
            "single-table p99 {} must exceed skew-aware {}",
            single.p99,
            skew.p99
        );
        assert!(
            single.per_1k >= skew.per_1k,
            "saturation must not be cheaper: {} vs {}",
            single.per_1k,
            skew.per_1k
        );
        // Skew-awareness must beat blind hashing on tail latency: blind
        // hashing still lands the hottest key on one cold shard.
        assert!(
            skew.p99 <= hashed.p99,
            "skew-aware p99 {} vs hashed {}",
            skew.p99,
            hashed.p99
        );
    }

    #[test]
    fn same_scale_same_table() {
        let scale = Scale::tiny();
        let a = render(&shard_rows(&scale));
        let b = render(&shard_rows(&scale));
        assert_eq!(a.to_string(), b.to_string());
    }
}
