//! Ablation study (beyond the paper's artifacts): what the paper's two
//! highlighted engineering choices are worth, measured by switching each
//! off.
//!
//! * **binary ID encoding** — Section 8.4: "DynamoDB allows storing
//!   arbitrary binary objects as values, a feature we exploited in order
//!   to efficiently encode our index data"; the ablation forces the
//!   base64 / 1 KB-chunk string fallback on DynamoDB.
//! * **batched writes** — Section 8.1: "we batched the documents in order
//!   to minimize the number of calls"; the ablation writes one item per
//!   API request.
//! * **2LUPI semijoin pre-filtering** — Section 5.4's reduction step; the
//!   ablation is plain LUI (same answers, no path-table pre-filter), so
//!   the LUI row doubles as this comparison.

use crate::{build_warehouse, corpus, Scale, TextTable};
use amada_cloud::KvTuning;
use amada_core::WarehouseConfig;
use amada_index::Strategy;

/// One ablation row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration label.
    pub label: &'static str,
    /// Index build wall time (seconds).
    pub build_secs: f64,
    /// Index build cost (dollars).
    pub build_cost: f64,
    /// Store API requests issued while building.
    pub api_requests: u64,
    /// Stored index bytes (raw + overhead).
    pub stored_mb: f64,
    /// Mean workload query response (seconds).
    pub query_secs: f64,
}

/// Runs the ablations on the LUI strategy (the one whose encoding the
/// choices affect most).
pub fn ablation_rows(scale: &Scale) -> Vec<AblationRow> {
    let docs = corpus(scale);
    let queries = crate::workload();
    let configs: [(&'static str, KvTuning); 3] = [
        ("LUI (binary + batched)", KvTuning::NONE),
        (
            "LUI, string-encoded IDs",
            KvTuning {
                force_string_values: true,
                disable_batching: false,
            },
        ),
        (
            "LUI, unbatched writes",
            KvTuning {
                force_string_values: false,
                disable_batching: true,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (label, tuning) in configs {
        let mut cfg = WarehouseConfig::with_strategy(Strategy::Lui);
        cfg.kv_tuning = tuning;
        let api_before = 0u64;
        let (mut w, build) = build_warehouse(cfg, &docs);
        let api_requests = w.world().kv.stats().api_requests - api_before;
        let mut query_secs = 0.0;
        for q in &queries {
            query_secs += w.run_query(q).exec.response_time.as_secs_f64();
        }
        rows.push(AblationRow {
            label,
            build_secs: build.total_time.as_secs_f64(),
            build_cost: build.cost.total().dollars(),
            api_requests,
            stored_mb: w.world().kv.stats().stored_bytes() as f64 / (1024.0 * 1024.0),
            query_secs: query_secs / queries.len() as f64,
        });
    }
    rows
}

/// Renders the ablation table.
pub fn ablation(scale: &Scale) -> TextTable {
    let mut t = TextTable::new([
        "Configuration",
        "Build time (s)",
        "Build cost ($)",
        "API requests",
        "Index stored (MB)",
        "Mean query (s)",
    ]);
    for r in ablation_rows(scale) {
        t.row([
            r.label.to_string(),
            format!("{:.2}", r.build_secs),
            format!("{:.6}", r.build_cost),
            r.api_requests.to_string(),
            format!("{:.2}", r.stored_mb),
            format!("{:.3}", r.query_secs),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_choices_pay_off() {
        let rows = ablation_rows(&Scale::tiny());
        let base = &rows[0];
        let strings = &rows[1];
        let unbatched = &rows[2];
        // String encoding stores more bytes and must not be faster.
        assert!(strings.stored_mb > base.stored_mb);
        assert!(strings.build_secs >= base.build_secs * 0.99);
        // Unbatched writes cost far more API calls and more time.
        assert!(unbatched.api_requests > 5 * base.api_requests);
        assert!(unbatched.build_secs > base.build_secs);
        // Answers stay correct either way (query times comparable order).
        assert!(strings.query_secs > 0.0 && unbatched.query_secs > 0.0);
    }
}
