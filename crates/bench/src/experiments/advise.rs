//! The adaptive-advisor experiment (`repro advise`, beyond the paper):
//! the ROADMAP's cost-based advisor, closed end to end.
//!
//! Six deployments serve the same heterogeneous six-month horizon (one
//! workload round per month). The corpus is partitioned by what the
//! documents *are* (the generator's document kinds): `people/` holds the
//! person-rooted documents, `items/` the item-heavy bulk whose postings a
//! uniform index would still decode on every person query, and `auc/` the
//! auction feeds — fully replaced by churn every month. The workload
//! **drifts** mid-horizon: for the first three months an auction season
//! is on and the Zipf-skewed open-loop storm mixes the two person twigs
//! (`q6` hot, `q7` warm) with the auction twig `q5`; from month three the
//! season ends and only the person queries remain.
//!
//! * five **static** layouts — the four uniform index strategies plus
//!   the no-index scan — are fixed for the whole horizon;
//! * one **adaptive** deployment starts on the plan the advisor
//!   ([`amada_core::advise_adaptive`]) recommends for the *declared*
//!   season workload, under a monthly storage budget (chosen to exclude
//!   the heavyweight uniform-2LUPI layout) and a mean-response SLO
//!   (which excludes the cheap-but-scan-heavy "index nothing" plans the
//!   dollars-only optimum would pick). It records its own spans and
//!   re-advises monthly from live attribution
//!   ([`amada_core::Warehouse::readvise`]): while the season lasts the
//!   cadence confirms the plan for free; the month the auction traffic
//!   vanishes from the observation window, the advisor demotes the
//!   churning `auc/` partition to the cheapest index and the migration
//!   **piggybacks on the churn rebuild already queued** — no second
//!   message, no second key sweep ([`amada_core::Warehouse::apply_plan`]).
//!
//! The economics the advisor has to discover: `people/` is always hot and
//! selectively queried, so the precise ID-granularity index pays for
//! itself there; `items/` matches no query, so anything beyond the
//! cheapest presence index is wasted storage and decode ballast; `auc/`
//! deserves the precise index only while the season queries it — after
//! the drift every extra index byte is pure storage rent, rewritten by
//! churn every month.
//!
//! Every deployment pays the same bills on the same meter: initial index
//! build, per-month query charges, churn maintenance (incremental
//! rebuild + stale-entry retraction, the adaptive row's re-advises and
//! migrations included), and storage billed monthly at each
//! end-of-month footprint. The initial corpus upload is identical
//! everywhere and excluded, which also keeps the measured totals
//! directly comparable to the advisor's projections
//! (`build + runs × (run + maintenance) + months × storage`, upload-free
//! by construction).
//!
//! The tests pin the headline: the adaptive deployment lands strictly
//! cheapest over the horizon *and* with a mean response time no worse
//! than any static layout; the SLO demonstrably rejected a
//! cheaper-but-slower plan; exactly one cadence re-advise migrated, it
//! moved only the churning partition, and the deploy-time projections
//! agree with the measured static deployments within
//! [`amada_core::ESTIMATE_TOLERANCE`].

use crate::{corpus, Scale, TextTable};
use amada_cloud::{Money, SimDuration};
use amada_core::{
    advise_adaptive, AdaptiveAdvice, ArrivalProcess, FamilyLoad, Horizon, Warehouse,
    WarehouseConfig,
};
use amada_index::{MixedPlan, Strategy};
use amada_pattern::Query;
use amada_xmark::{generate_document, kind_for, workload_query, DocKind};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Workload rounds (months) in the measured horizon.
pub static ADVISE_ROUNDS_RUN: AtomicU64 = AtomicU64::new(0);
/// Adaptive deployment's horizon total (micro-dollars).
pub static ADVISE_ADAPTIVE_TOTAL_UDOLLARS: AtomicU64 = AtomicU64::new(0);
/// Cheapest static deployment's horizon total (micro-dollars).
pub static ADVISE_BEST_STATIC_TOTAL_UDOLLARS: AtomicU64 = AtomicU64::new(0);
/// Adaptive deployment's mean response time (µs).
pub static ADVISE_ADAPTIVE_MEAN_RESPONSE_US: AtomicU64 = AtomicU64::new(0);
/// Best static mean response time (µs) across the five static rows.
pub static ADVISE_BEST_STATIC_MEAN_RESPONSE_US: AtomicU64 = AtomicU64::new(0);
/// Documents migrated when the cadence detected the drift.
pub static ADVISE_MIGRATED_DOCS: AtomicU64 = AtomicU64::new(0);
/// Documents migrated by all the *confirming* cadence re-advises — 0 at
/// steady state.
pub static ADVISE_CONFIRM_MIGRATED_DOCS: AtomicU64 = AtomicU64::new(0);
/// Whether the chosen plan met the declared constraints (1/0).
pub static ADVISE_BUDGET_MET: AtomicU64 = AtomicU64::new(0);

/// Workload rounds in the horizon — one per month. Each round releases
/// the same seeded open-loop storm; between rounds the churning partition
/// is replaced and the adaptive deployment re-advises.
pub const ROUNDS: usize = 6;

/// The auction season covers rounds `0..DRIFT_AT`; from `DRIFT_AT` on,
/// the auction query disappears from the storm.
pub const DRIFT_AT: usize = 3;

/// The declared mean-response SLO (seconds). Without it the
/// dollars-optimal plan leaves the rarely-queried partitions unindexed
/// and every arrival scans them — cheaper on storage and maintenance,
/// several times slower on response.
pub const RESPONSE_SLO_SECS: f64 = 0.30;

/// The four uniform index strategies measured as static rows (the
/// non-routable LUP-PD variant competes in `repro pushdown`, not here).
pub const STATICS: [Strategy; 4] = [
    Strategy::Lu,
    Strategy::Lup,
    Strategy::Lui,
    Strategy::TwoLupi,
];

/// The storm: gentle (no bursts, no diurnal swing, high base rate so
/// idle-poll time is negligible) but Zipf-skewed, so rank-0 `q6`
/// dominates arrivals and the tail queries trickle in.
fn storm() -> ArrivalProcess {
    ArrivalProcess {
        seed: 0xAD_515E,
        arrivals: 90,
        base_rate_per_sec: 40.0,
        diurnal_amplitude: 0.0,
        diurnal_period: SimDuration::from_secs(60),
        burst_every: SimDuration::from_secs(3600),
        burst_len: SimDuration::from_secs(1),
        burst_factor: 1.0,
        zipf_exponent: 1.1,
    }
}

/// The full query catalog: the two person twigs plus the auction twig.
/// Re-advises match observed families against this.
fn catalog() -> Vec<Query> {
    vec![
        workload_query("q6").expect("q6 exists"),
        workload_query("q5").expect("q5 exists"),
        workload_query("q7").expect("q7 exists"),
    ]
}

/// The storm catalog of one round: in season the auction query rides
/// mid-rank; after the drift only the person queries remain.
fn round_catalog(round: usize) -> Vec<Query> {
    if round < DRIFT_AT {
        catalog()
    } else {
        vec![
            workload_query("q6").expect("q6 exists"),
            workload_query("q7").expect("q7 exists"),
        ]
    }
}

/// The workload the operator declares at deploy time: the season mix,
/// weighted roughly as the Zipf storm will spread its arrivals. The
/// cadence re-advises replace this declaration with *observed* families.
fn declared_families() -> Vec<FamilyLoad> {
    let fam = |name: &str, arrivals: u64| FamilyLoad {
        query: workload_query(name).expect("catalog query exists"),
        arrivals,
    };
    vec![fam("q6", 46), fam("q5", 33), fam("q7", 11)]
}

/// The partition a generated document belongs to, by its kind: the
/// person-rooted documents (the mixed-kind documents carry person
/// sections too, so they route with the people), the item-heavy bulk,
/// and the churning auction feeds.
fn partition_prefix(slot: usize) -> &'static str {
    match kind_for(slot) {
        DocKind::People | DocKind::Mixed => "people/",
        DocKind::Items => "items/",
        DocKind::OpenAuctions | DocKind::ClosedAuctions => "auc/",
    }
}

/// The corpus, re-homed into the three kind-derived partitions.
fn partitioned_corpus(scale: &Scale) -> Vec<(String, String)> {
    corpus(scale)
        .into_iter()
        .enumerate()
        .map(|(i, (uri, xml))| (format!("{}{uri}", partition_prefix(i)), xml))
        .collect()
}

/// `(original corpus slot, uri)` of the documents replaced each round:
/// the whole auction partition (a monthly feed fully superseded between
/// rounds).
fn churn_victims(docs: &[(String, String)]) -> Vec<(usize, String)> {
    docs.iter()
        .enumerate()
        .filter(|(_, (uri, _))| uri.starts_with("auc/"))
        .map(|(i, (uri, _))| (i, uri.clone()))
        .collect()
}

/// Uploads one churn round's replacements: the victims' slots regenerated
/// under a round-specific seed (so every replaced document truly
/// changes), re-uploaded under the same URIs. The rebuild itself rides
/// the next `build_index` — which lets a re-advise issued *after* the
/// upload piggyback its migration on the queued rebuild.
fn churn_upload(w: &mut Warehouse, scale: &Scale, victims: &[(usize, String)], round: usize) {
    let mut cc = scale.corpus_config();
    cc.seed = scale.seed ^ (round as u64).wrapping_mul(0x9E37_79B9) ^ 0xAD_115E;
    w.upload_documents(
        victims
            .iter()
            .map(|(i, uri)| (uri.clone(), generate_document(&cc, *i).xml)),
    );
}

/// One measured deployment.
#[derive(Debug, Clone)]
pub struct AdviseRow {
    /// Row label (`static LUP`, `no index`, `adaptive`).
    pub label: String,
    /// The plan in force at the end of the horizon.
    pub plan: String,
    /// Initial index build.
    pub build: Money,
    /// All query charges across the rounds.
    pub queries: Money,
    /// All churn maintenance (and, for the adaptive row, the re-advises
    /// and migration).
    pub maintenance: Money,
    /// Monthly storage at the end-of-horizon footprint (what the budget
    /// judges).
    pub storage_per_month: Money,
    /// Storage billed over the horizon: the sum of the end-of-month
    /// footprints, one per round.
    pub storage_billed: Money,
    /// Mean response time across every arrival of every round (seconds).
    pub mean_response: f64,
    /// Whether the end-of-horizon footprint fits the declared budget.
    pub fits_budget: bool,
    /// `build + queries + maintenance + storage_billed`.
    pub total: Money,
}

/// Everything the artifact and its tests need from one run.
#[derive(Debug, Clone)]
pub struct AdviseOutcome {
    /// Five static rows then the adaptive row.
    pub rows: Vec<AdviseRow>,
    /// The declared monthly storage budget (just below the uniform-2LUPI
    /// footprint, so the heaviest layout is inadmissible).
    pub budget: Money,
    /// The deploy-time advice for the declared season workload (ranked
    /// projections included) — the plan the adaptive row starts on.
    pub advice: AdaptiveAdvice,
    /// Documents migrated by each monthly cadence re-advise, in order.
    pub cadence_migrations: Vec<u64>,
}

/// Runs one deployment through the whole horizon. `constraints` (budget,
/// SLO) steer the adaptive row's re-advises; admissibility of static rows
/// is judged by the caller once the budget is known.
fn run_deployment(
    label: &str,
    cfg: WarehouseConfig,
    scale: &Scale,
    docs: &[(String, String)],
    victims: &[(usize, String)],
    budget: Option<Money>,
    adaptive: bool,
) -> (AdviseRow, Vec<u64>) {
    let process = storm();
    let mut w = Warehouse::new(cfg);
    w.upload_documents(docs.iter().cloned());
    let build = w.build_index().cost.total();
    let mut queries = Money::ZERO;
    let mut maintenance = Money::ZERO;
    let mut storage_billed = Money::ZERO;
    let mut responses: Vec<f64> = Vec::new();
    let mut cadence: Vec<u64> = Vec::new();
    for round in 0..ROUNDS {
        let cat = round_catalog(round);
        let rep = w.run_workload_open_loop(&cat, &process);
        queries += rep.cost.total();
        responses.extend(rep.executions.iter().map(|e| e.response_time.as_secs_f64()));
        // The month ends here: bill its storage at the current footprint.
        storage_billed += w.storage_cost().total();
        if round + 1 < ROUNDS {
            let before = w.total_cost().total();
            churn_upload(&mut w, scale, victims, round);
            if adaptive {
                // The monthly cadence, deliberately *after* the churn
                // upload: a migration the re-advise orders piggybacks on
                // the rebuild already queued for the churned documents.
                // Each window is one month of observed traffic; the
                // horizon the advisor prices is the deployment's own.
                let mut churn = BTreeMap::new();
                churn.insert("auc".to_string(), victims.len() as u64);
                let h = Horizon {
                    expected_runs: ROUNDS as u32,
                    months: ROUNDS as f64,
                    budget_per_month: budget,
                    response_slo: Some(RESPONSE_SLO_SECS),
                };
                cadence.push(w.readvise(&catalog(), &churn, &h).migrated);
            }
            w.build_index();
            maintenance += w.total_cost().total().saturating_sub(before);
        }
    }
    let storage_per_month = w.storage_cost().total();
    let total = build + queries + maintenance + storage_billed;
    let mean_response = responses.iter().sum::<f64>() / responses.len().max(1) as f64;
    let plan = match w.mixed_plan() {
        Some(p) if !p.assignments().is_empty() => {
            let parts: Vec<String> = p
                .assignments()
                .iter()
                .map(|(part, s)| format!("{part}={}", s.map_or("scan", Strategy::name)))
                .collect();
            parts.join(",")
        }
        Some(p) => format!(
            "uniform:{}",
            p.default_strategy().map_or("scan", Strategy::name)
        ),
        None => format!("uniform:{}", w.config().strategy.name()),
    };
    let row = AdviseRow {
        label: label.to_string(),
        plan,
        build,
        queries,
        maintenance,
        storage_per_month,
        storage_billed,
        mean_response,
        fits_budget: true, // judged by the caller once the budget is known
        total,
    };
    (row, cadence)
}

/// Runs all six deployments over the same corpus, storms and churn
/// sequence, then the adaptive one under the derived constraints.
pub fn advise_outcome(scale: &Scale) -> AdviseOutcome {
    let docs = partitioned_corpus(scale);
    let victims = churn_victims(&docs);

    let mut rows = Vec::new();
    for s in STATICS {
        let (row, _) = run_deployment(
            &format!("static {}", s.name()),
            WarehouseConfig::with_strategy(s),
            scale,
            &docs,
            &victims,
            None,
            false,
        );
        rows.push(row);
    }
    let mut scan_cfg = WarehouseConfig::with_strategy(Strategy::Lup);
    scan_cfg.mixed_plan = Some(MixedPlan::uniform(None));
    let (row, _) = run_deployment("no index", scan_cfg, scale, &docs, &victims, None, false);
    rows.push(row);

    // The declared budget: just below the uniform-2LUPI footprint, so
    // the most storage-hungry static layout is not admissible and the
    // advisor must find a cheaper-to-store plan that still wins.
    let two_lupi = rows
        .iter()
        .find(|r| r.plan == "uniform:2LUPI")
        .expect("the 2LUPI static row ran")
        .storage_per_month;
    let budget = two_lupi.scaled(99, 100);

    // Deploy-time advice: the operator declares the season workload, the
    // expected monthly churn, the horizon and both constraints; the
    // advisor picks the starting plan (host-side analysis, nothing
    // billed). The adaptive deployment then *starts* on that plan.
    let base = WarehouseConfig::with_strategy(Strategy::Lu);
    let mut churn = BTreeMap::new();
    churn.insert("auc".to_string(), victims.len() as u64);
    let horizon = Horizon {
        expected_runs: ROUNDS as u32,
        months: ROUNDS as f64,
        budget_per_month: Some(budget),
        response_slo: Some(RESPONSE_SLO_SECS),
    };
    let advice = advise_adaptive(&docs, &declared_families(), &churn, &horizon, &base);

    let mut adaptive_cfg = WarehouseConfig::with_strategy(Strategy::Lu);
    adaptive_cfg.mixed_plan = Some(advice.chosen.plan.clone());
    adaptive_cfg.host.record = true;
    let (row, cadence_migrations) = run_deployment(
        "adaptive",
        adaptive_cfg,
        scale,
        &docs,
        &victims,
        Some(budget),
        true,
    );
    rows.push(row);

    for r in &mut rows {
        r.fits_budget = r.storage_per_month <= budget;
    }

    let adaptive = rows.last().expect("six rows");
    let best_static = rows[..rows.len() - 1]
        .iter()
        .min_by_key(|r| r.total)
        .expect("five static rows");
    let best_response = rows[..rows.len() - 1]
        .iter()
        .map(|r| r.mean_response)
        .fold(f64::INFINITY, f64::min);
    let drift_migrated: u64 = cadence_migrations.iter().copied().max().unwrap_or(0);
    let confirm_migrated: u64 = cadence_migrations.iter().sum::<u64>() - drift_migrated;
    ADVISE_ROUNDS_RUN.store(ROUNDS as u64, Ordering::Relaxed);
    ADVISE_ADAPTIVE_TOTAL_UDOLLARS
        .store((adaptive.total.dollars() * 1e6) as u64, Ordering::Relaxed);
    ADVISE_BEST_STATIC_TOTAL_UDOLLARS.store(
        (best_static.total.dollars() * 1e6) as u64,
        Ordering::Relaxed,
    );
    ADVISE_ADAPTIVE_MEAN_RESPONSE_US
        .store((adaptive.mean_response * 1e6) as u64, Ordering::Relaxed);
    ADVISE_BEST_STATIC_MEAN_RESPONSE_US.store((best_response * 1e6) as u64, Ordering::Relaxed);
    ADVISE_MIGRATED_DOCS.store(drift_migrated, Ordering::Relaxed);
    ADVISE_CONFIRM_MIGRATED_DOCS.store(confirm_migrated, Ordering::Relaxed);
    ADVISE_BUDGET_MET.store(advice.budget_met as u64, Ordering::Relaxed);

    AdviseOutcome {
        rows,
        budget,
        advice,
        cadence_migrations,
    }
}

/// The `repro advise` artifact.
pub fn advise(scale: &Scale) -> TextTable {
    render(&advise_outcome(scale))
}

/// Renders already-computed rows.
pub fn render(o: &AdviseOutcome) -> TextTable {
    let mut t = TextTable::new([
        "deployment",
        "plan in force",
        "build ($)",
        "queries ($)",
        "maint ($)",
        "storage 6mo ($)",
        "mean resp (s)",
        "in budget",
        "total ($)",
    ]);
    for r in &o.rows {
        t.row([
            r.label.clone(),
            r.plan.clone(),
            format!("${:.6}", r.build.dollars()),
            format!("${:.6}", r.queries.dollars()),
            format!("${:.6}", r.maintenance.dollars()),
            format!("${:.6}", r.storage_billed.dollars()),
            format!("{:.3}", r.mean_response),
            if r.fits_budget { "yes" } else { "NO" }.to_string(),
            format!("${:.6}", r.total.dollars()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use amada_core::ESTIMATE_TOLERANCE;

    /// The pinned scale: three times tiny's document count at the default
    /// scale's ~8 KB documents — enough corpus that index payload sizes
    /// and posting-decode ballast (what separates the strategies) dominate
    /// per-item constants.
    fn pinned_scale() -> Scale {
        Scale {
            doc_bytes: Scale::default_scale().doc_bytes,
            docs: 180,
            ..Scale::tiny()
        }
    }

    fn rel_diff(a: Money, b: Money) -> f64 {
        let (a, b) = (a.dollars(), b.dollars());
        if a == 0.0 && b == 0.0 {
            0.0
        } else {
            (a - b).abs() / a.max(b)
        }
    }

    /// The headline inequalities: the adaptive deployment is strictly
    /// cheapest over the horizon at a mean response time no worse than
    /// any static layout; the budget excludes uniform 2LUPI yet the
    /// chosen plan meets it; the SLO demonstrably rejected a
    /// cheaper-but-slower plan; the drift migration moved exactly the
    /// churning partition (piggybacked on its churn) while every other
    /// cadence step confirmed for free; and the advisor's projections
    /// agree with the measured static deployments within the stated
    /// tolerance.
    #[test]
    fn adaptive_plan_beats_every_static_deployment() {
        let o = advise_outcome(&pinned_scale());
        assert_eq!(o.rows.len(), STATICS.len() + 2);
        let adaptive = o.rows.last().unwrap();
        assert_eq!(adaptive.label, "adaptive");
        let statics = &o.rows[..o.rows.len() - 1];

        // Dollars and time, against every static layout.
        for s in statics {
            assert!(
                adaptive.total < s.total,
                "adaptive {} (${:.6}) must undercut {} (${:.6})",
                adaptive.plan,
                adaptive.total.dollars(),
                s.label,
                s.total.dollars()
            );
            assert!(
                adaptive.mean_response <= s.mean_response,
                "adaptive response {:.4}s vs {} {:.4}s",
                adaptive.mean_response,
                s.label,
                s.mean_response
            );
        }

        // The plan in force at the end is genuinely mixed, and the drift
        // demoted the churning partition below the hot one's index.
        assert!(
            adaptive.plan.contains('='),
            "expected a per-partition plan, got {}",
            adaptive.plan
        );

        // The budget binds: uniform 2LUPI is inadmissible, the chosen
        // plan fits, and the advisor reported its constraints met.
        let two_lupi = statics.iter().find(|r| r.plan == "uniform:2LUPI").unwrap();
        assert!(!two_lupi.fits_budget, "the budget must exclude 2LUPI");
        assert!(adaptive.fits_budget);
        assert!(o.advice.budget_met);
        assert!(o.advice.chosen.within_budget(o.budget));

        // The SLO binds: the unconstrained dollars-optimum in the ranked
        // table is cheaper than the chosen plan but misses the SLO — the
        // advisor refused to buy dollars with response time.
        assert!(o.advice.chosen.meets_slo(RESPONSE_SLO_SECS));
        let unconstrained = o
            .advice
            .ranked
            .iter()
            .min_by_key(|e| e.projected_total)
            .expect("ranked projections");
        assert!(
            unconstrained.projected_total < o.advice.chosen.projected_total
                && !unconstrained.meets_slo(RESPONSE_SLO_SECS),
            "the SLO should have rejected a cheaper-but-slower plan, \
             unconstrained {} ({:.4}s) vs chosen {} ({:.4}s)",
            unconstrained.label,
            unconstrained.mean_response_secs,
            o.advice.chosen.label,
            o.advice.chosen.mean_response_secs
        );

        // Adaptation: one cadence re-advise per month boundary; exactly
        // one of them (the drift month) migrated, it moved only the
        // churning partition — a strict subset of the corpus — and every
        // other month confirmed the plan for free.
        assert_eq!(o.cadence_migrations.len(), ROUNDS - 1);
        let victims = churn_victims(&partitioned_corpus(&pinned_scale())).len() as u64;
        let migrated: Vec<u64> = o
            .cadence_migrations
            .iter()
            .copied()
            .filter(|&m| m > 0)
            .collect();
        assert_eq!(
            migrated,
            vec![victims],
            "exactly the drift migration, covering the churning partition: {:?}",
            o.cadence_migrations
        );
        assert_eq!(o.cadence_migrations[DRIFT_AT], victims);
        assert!(victims < pinned_scale().docs as u64);

        // The advisor's projections for the uniform layouts track the
        // measured static deployments: indexed storage near-exactly,
        // horizon totals within the stated tolerance. The scan layout's
        // storage is excluded from the tight pin: the measured footprint
        // includes materialized query results the estimator does not
        // model — negligible against any index, dominant against none.
        for r in statics {
            let est = o
                .advice
                .ranked
                .iter()
                .find(|e| e.label == r.plan)
                .unwrap_or_else(|| panic!("no projection for {}", r.plan));
            if r.plan != "uniform:scan" {
                assert!(
                    rel_diff(est.storage_per_month, r.storage_per_month) <= 0.05,
                    "{}: storage projection {} vs measured {}",
                    r.plan,
                    est.storage_per_month,
                    r.storage_per_month
                );
            }
            assert!(
                rel_diff(est.projected_total, r.total) <= ESTIMATE_TOLERANCE,
                "{}: projected {} vs measured {}",
                r.plan,
                est.projected_total,
                r.total
            );
        }
    }

    /// Bit-for-bit determinism of the whole experiment (at the cheap
    /// scale — the property is scale-independent).
    #[test]
    fn same_scale_same_table() {
        let scale = Scale::tiny();
        let a = render(&advise_outcome(&scale));
        let b = render(&advise_outcome(&scale));
        assert_eq!(a.to_string(), b.to_string());
    }
}
