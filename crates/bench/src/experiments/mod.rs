//! One module per evaluation artifact (table / figure) of the paper.

pub mod ablation;
pub mod advise;
pub mod amortize;
pub mod churn;
pub mod comparison;
pub mod elastic;
pub mod fault;
pub mod indexing;
pub mod perf;
pub mod pushdown;
pub mod querying;
pub mod scaling;
pub mod shard;
pub mod trace;

pub use ablation::ablation;
pub use advise::advise;
pub use amortize::fig13;
pub use churn::churn;
pub use comparison::{comparison_suite, table7, table8, ComparisonSuite};
pub use elastic::elastic;
pub use fault::fault;
pub use indexing::{fig7, fig8, indexing_suite, table4, table6, IndexingSuite};
pub use perf::perf;
pub use pushdown::pushdown;
pub use querying::{fig11, fig12, fig9, query_suite, table5, QuerySuite};
pub use scaling::fig10;
pub use shard::shard;
pub use trace::trace;
