//! Tables 7 and 8: comparison with the paper's preliminary system \[8\],
//! which stored the index in SimpleDB instead of DynamoDB. Per MB of XML
//! data: indexing speed and cost (Table 7, including monthly storage per
//! GB) and query-processing speed and cost (Table 8).

use crate::{build_warehouse, corpus, Scale, TextTable};
use amada_cloud::{InstanceType, KvBackend, SimpleDbConfig};
use amada_core::{Pool, WarehouseConfig};
use amada_index::Strategy;
use std::collections::HashMap;

/// Per-(backend, strategy) measurements.
#[derive(Debug, Clone, Copy)]
pub struct BackendRow {
    /// Indexing time, milliseconds per MB of XML.
    pub index_ms_per_mb: f64,
    /// Indexing cost, dollars per MB of XML.
    pub index_cost_per_mb: f64,
    /// Index monthly storage, dollars per GB of XML.
    pub storage_per_gb_month: f64,
    /// Workload time, milliseconds per MB of XML.
    pub query_ms_per_mb: f64,
    /// Workload cost, dollars per MB of XML.
    pub query_cost_per_mb: f64,
}

/// The full comparison grid.
pub struct ComparisonSuite {
    /// `(backend label, strategy)` → measurements.
    pub rows: HashMap<(&'static str, Strategy), BackendRow>,
    /// Corpus size in MB.
    pub corpus_mb: f64,
}

/// Runs both backends across all strategies — eight independent
/// warehouses, run concurrently across host threads (each owns its own
/// simulated cloud and virtual clock).
pub fn comparison_suite(scale: &Scale) -> ComparisonSuite {
    let docs = corpus(scale);
    let corpus_bytes: u64 = docs.iter().map(|(_, x)| x.len() as u64).sum();
    let corpus_mb = corpus_bytes as f64 / (1024.0 * 1024.0);
    let queries = crate::workload();
    let units: Vec<(&'static str, KvBackend, Strategy)> = [
        ("SimpleDB [8]", KvBackend::Simple(SimpleDbConfig::default())),
        (
            "DynamoDB (this work)",
            KvBackend::Dynamo(Default::default()),
        ),
    ]
    .into_iter()
    .flat_map(|(label, backend)| {
        Strategy::ALL
            .iter()
            .map(move |&s| (label, backend.clone(), s))
    })
    .collect();
    let rows: HashMap<(&'static str, Strategy), BackendRow> = amada_par::par_run(
        units
            .into_iter()
            .map(|(label, backend, strategy)| {
                let docs = &docs;
                let queries = &queries;
                move || {
                    let mut cfg = WarehouseConfig::with_strategy(strategy);
                    cfg.backend = backend;
                    cfg.query_pool = Pool::new(1, InstanceType::Large);
                    let (mut w, build) = build_warehouse(cfg, docs);
                    let run = w.run_workload(queries, 1);
                    let storage = w.storage_cost().index_store;
                    (
                        (label, strategy),
                        BackendRow {
                            index_ms_per_mb: build.total_time.as_secs_f64() * 1000.0 / corpus_mb,
                            index_cost_per_mb: build.cost.total().dollars() / corpus_mb,
                            storage_per_gb_month: storage.dollars()
                                / (corpus_bytes as f64 / 1_000_000_000.0),
                            query_ms_per_mb: run.total_time.as_secs_f64() * 1000.0 / corpus_mb,
                            query_cost_per_mb: run.cost.total().dollars() / corpus_mb,
                        },
                    )
                }
            })
            .collect(),
    )
    .into_iter()
    .collect();
    ComparisonSuite { rows, corpus_mb }
}

const BACKENDS: [&str; 2] = ["SimpleDB [8]", "DynamoDB (this work)"];

/// Paper Table 7: indexing speed and cost per MB of XML, per backend,
/// plus the monthly index storage cost per GB of XML.
pub fn table7(suite: &ComparisonSuite) -> TextTable {
    let mut t = TextTable::new([
        "Strategy",
        "Backend",
        "Indexing speed (ms/MB)",
        "Indexing cost ($/MB)",
        "Index storage ($/GB/month)",
    ]);
    for s in Strategy::ALL {
        for b in BACKENDS {
            let r = &suite.rows[&(b, s)];
            t.row([
                s.name().to_string(),
                b.to_string(),
                format!("{:.1}", r.index_ms_per_mb),
                format!("{:.6}", r.index_cost_per_mb),
                format!("{:.4}", r.storage_per_gb_month),
            ]);
        }
    }
    t
}

/// Paper Table 8: query-processing speed and cost per MB of XML, per
/// backend.
pub fn table8(suite: &ComparisonSuite) -> TextTable {
    let mut t = TextTable::new([
        "Strategy",
        "Backend",
        "Query speed (ms/MB)",
        "Query cost ($/MB)",
    ]);
    for s in Strategy::ALL {
        for b in BACKENDS {
            let r = &suite.rows[&(b, s)];
            t.row([
                s.name().to_string(),
                b.to_string(),
                format!("{:.2}", r.query_ms_per_mb),
                format!("{:.8}", r.query_cost_per_mb),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamodb_beats_simpledb_on_speed_and_cost() {
        let suite = comparison_suite(&Scale::tiny());
        for s in Strategy::ALL {
            let sdb = &suite.rows[&("SimpleDB [8]", s)];
            let ddb = &suite.rows[&("DynamoDB (this work)", s)];
            // Table 7 shape: indexing one-to-two orders of magnitude
            // faster on DynamoDB; we require at least 5x at tiny scale.
            assert!(
                sdb.index_ms_per_mb > 5.0 * ddb.index_ms_per_mb,
                "{s}: {} vs {}",
                sdb.index_ms_per_mb,
                ddb.index_ms_per_mb
            );
            // Table 8 shape: querying several times faster.
            assert!(
                sdb.query_ms_per_mb > 1.5 * ddb.query_ms_per_mb,
                "{s}: query {} vs {}",
                sdb.query_ms_per_mb,
                ddb.query_ms_per_mb
            );
            // Indexing cost is higher on SimpleDB (more billed operations
            // from value chunking, more instance time).
            assert!(sdb.index_cost_per_mb > ddb.index_cost_per_mb, "{s}");
        }
        assert_eq!(table7(&suite).len(), 8);
        assert_eq!(table8(&suite).len(), 8);
    }
}
