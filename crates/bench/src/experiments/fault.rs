//! The fault experiment (beyond the paper's figures): the full pipeline —
//! upload, index build, query workload — under seeded transient-fault
//! injection, at increasing throttle rates.
//!
//! The paper's Section 3 argues the architecture tolerates module failure
//! because every task rides a visibility-leased queue message; Section 7
//! prices every service request. This experiment connects the two: faults
//! make the warehouse retry, renew and (rarely) redeliver, and since every
//! retry is a billed request, resilience shows up as measurable extra
//! dollars and seconds over the rate-0 row — which is itself bit-identical
//! to a run with no fault subsystem at all.
//!
//! Fully deterministic: one fault seed (`AMADA_FAULT_SEED`, default
//! `0xFA117`) fixes the entire schedule of throttles and backoff jitter,
//! so two runs with the same seed produce identical tables.

use crate::{build_warehouse, corpus, secs, workload, Scale, TextTable};
use amada_cloud::{FaultConfig, Money, SimDuration};
use amada_core::{WarehouseConfig, DEAD_LETTER_QUEUE};
use amada_index::Strategy;

/// Default master seed for the experiment's fault schedule.
pub const DEFAULT_FAULT_SEED: u64 = 0xFA117;

/// Throttle rates exercised (0 = the faults-off identity row).
pub const RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.1];

/// The fault seed: `AMADA_FAULT_SEED` when set, the default otherwise.
pub fn fault_seed() -> u64 {
    std::env::var("AMADA_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_FAULT_SEED)
}

/// One measured pipeline run at a throttle rate.
#[derive(Debug, Clone, Copy)]
pub struct FaultRow {
    /// Throttle probability applied to every billed S3 / index-store /
    /// SQS request.
    pub rate: f64,
    /// Indexing-phase wall-clock time.
    pub build_time: SimDuration,
    /// Indexing-phase charges.
    pub build_cost: Money,
    /// Workload wall-clock time.
    pub workload_time: SimDuration,
    /// Workload charges.
    pub workload_cost: Money,
    /// Throttled (billed, retried) requests across the whole run.
    pub throttled: u64,
    /// Visibility-lease renewals issued by module cores.
    pub renewals: u64,
    /// Messages redelivered after a lease expired.
    pub redelivered: u64,
    /// Messages parked on the dead-letter queue.
    pub dead_lettered: u64,
    /// Queries that completed (must equal the workload size at any rate).
    pub queries_done: usize,
}

/// Runs the pipeline once per rate in [`RATES`] with one fault seed.
pub fn fault_rows(scale: &Scale, seed: u64) -> Vec<FaultRow> {
    let docs = corpus(scale);
    let queries = workload();
    RATES
        .iter()
        .map(|&rate| {
            let mut cfg = WarehouseConfig::with_strategy(Strategy::Lup);
            cfg.faults = FaultConfig {
                seed,
                s3_rate: rate,
                kv_rate: rate,
                sqs_rate: rate,
            };
            // Short enough that an expired lease (crash/abandonment) is
            // redelivered within the run, long enough that healthy tasks
            // rarely renew.
            cfg.visibility = SimDuration::from_secs(60);
            let (mut w, build) = build_warehouse(cfg, &docs);
            let run = w.run_workload(&queries, scale.workload_repeats);
            FaultRow {
                rate,
                build_time: build.total_time,
                build_cost: build.cost.total(),
                workload_time: run.total_time,
                workload_cost: run.cost.total(),
                throttled: build.throttled_requests + run.throttled_requests,
                renewals: build.lease_renewals + run.lease_renewals,
                redelivered: build.redelivered + run.redelivered,
                dead_lettered: w
                    .world()
                    .sqs
                    .len(DEAD_LETTER_QUEUE)
                    .expect("warehouse provisions the dead-letter queue")
                    as u64,
                queries_done: run.executions.len(),
            }
        })
        .collect()
}

/// The fault experiment: pipeline time, cost and fault-handling counters
/// per throttle rate.
pub fn fault(scale: &Scale) -> TextTable {
    render(&fault_rows(scale, fault_seed()))
}

/// Renders already-computed rows.
pub fn render(rows: &[FaultRow]) -> TextTable {
    let mut t = TextTable::new([
        "Fault rate",
        "Build (s)",
        "Build ($)",
        "Workload (s)",
        "Workload ($)",
        "Throttled",
        "Renewals",
        "Redelivered",
        "Dead-lettered",
    ]);
    for r in rows {
        t.row([
            format!("{:.2}", r.rate),
            secs(r.build_time),
            format!("${:.6}", r.build_cost.dollars()),
            secs(r.workload_time),
            format!("${:.6}", r.workload_cost.dollars()),
            r.throttled.to_string(),
            r.renewals.to_string(),
            r.redelivered.to_string(),
            r.dead_lettered.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_cost_money_but_not_answers() {
        let scale = Scale::tiny();
        let rows = fault_rows(&scale, DEFAULT_FAULT_SEED);
        assert_eq!(rows.len(), RATES.len());
        let expected = workload().len() * scale.workload_repeats;
        let clean = &rows[0];
        assert_eq!(clean.throttled, 0, "rate 0 draws no faults");
        assert_eq!(clean.redelivered, 0);
        for r in &rows {
            assert_eq!(r.queries_done, expected, "rate {}", r.rate);
            assert_eq!(r.dead_lettered, 0, "no poison messages at rate {}", r.rate);
        }
        let worst = &rows[RATES.len() - 1];
        assert!(worst.throttled > 0, "10% faults must throttle something");
        // Every retry is billed: the faulty pipeline costs strictly more.
        let clean_total = clean.build_cost + clean.workload_cost;
        let worst_total = worst.build_cost + worst.workload_cost;
        assert!(
            worst_total > clean_total,
            "faults {worst_total} vs clean {clean_total}"
        );
        assert!(worst.build_time >= clean.build_time);
    }

    #[test]
    fn same_seed_same_schedule() {
        let scale = Scale::tiny();
        let a = render(&fault_rows(&scale, 7));
        let b = render(&fault_rows(&scale, 7));
        assert_eq!(a.to_string(), b.to_string());
    }
}
