//! The document-churn experiment (beyond the paper's figures): Figure 13
//! extended to a corpus that keeps changing.
//!
//! Figure 13 asks how many workload runs it takes for an index to pay for
//! itself on a *static* corpus. Under churn the question inverts: each
//! workload run is now accompanied by a churn round replacing a fraction
//! of the documents, and every replaced document costs an incremental
//! index maintenance bill — the loader re-fetches and re-indexes the new
//! version and retracts the old version's stale entries (billed deletes
//! on DynamoDB, free on S3). The no-index scan pays none of that: new
//! versions simply overwrite their objects.
//!
//! The sweep raises the churn rate from 0% to 100% of the corpus per
//! workload run and reports, per strategy, the maintenance bill and the
//! *net* benefit per run (query savings − maintenance). The tests pin the
//! crossover: every strategy's net is positive on the static corpus and
//! negative at full churn, so somewhere in between the index stops paying
//! — and the advisor ([`amada_core::advise_churn`]), fed the same churn
//! rate, flips its recommendation to the "index nothing" candidate.

use crate::{corpus, strategy_warehouse, Scale, TextTable};
use amada_cloud::{InstanceType, Money};
use amada_core::{advise_churn, Pool, WarehouseConfig};
use amada_index::Strategy;
use amada_xmark::generate_document;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sweep points run (for `BENCH_repro.json`).
pub static CHURN_POINTS: AtomicU64 = AtomicU64::new(0);
/// Strategies whose net benefit flipped negative within the sweep.
pub static CHURN_FLIPS: AtomicU64 = AtomicU64::new(0);
/// Stale index items retracted across all maintenance rounds.
pub static CHURN_RETRACTED_ITEMS: AtomicU64 = AtomicU64::new(0);
/// First churn rate (percent) at which the advisor picked "index
/// nothing"; 0 when it never flipped.
pub static CHURN_ADVISOR_FLIP_PCT: AtomicU64 = AtomicU64::new(0);

/// Churn rates swept: percent of the corpus replaced per workload run.
pub const RATES: [u64; 6] = [0, 5, 10, 25, 50, 100];

/// The five competitors, in column order.
pub const STRATEGIES: [Strategy; 5] = [
    Strategy::Lu,
    Strategy::Lup,
    Strategy::Lui,
    Strategy::TwoLupi,
    Strategy::LupPd,
];

/// Advisor horizon: enough workload runs that indexing clearly pays on
/// the static corpus, so any "index nothing" verdict is churn's doing.
const ADVISOR_RUNS: u32 = 500;

/// One sweep point: every strategy's maintenance bill and net benefit
/// per workload run at this churn rate.
#[derive(Debug, Clone)]
pub struct ChurnRow {
    /// Percent of the corpus replaced per workload run.
    pub rate_pct: u64,
    /// Documents that rate replaces.
    pub replaced: usize,
    /// `(strategy name, maintenance $, net picodollars)` in
    /// [`STRATEGIES`] order; net = query savings − maintenance, signed
    /// because maintenance overtakes the savings along the sweep.
    pub per_strategy: Vec<(&'static str, Money, i128)>,
    /// The strategy with the best positive net, or `"none"` when every
    /// index loses money per run at this rate.
    pub best: &'static str,
    /// What the advisor recommends at this churn rate (`"none"` for the
    /// index-nothing candidate).
    pub advisor: &'static str,
}

/// Runs the sweep. Each strategy keeps one warehouse alive across the
/// whole sweep: its query savings are measured once on the fresh corpus,
/// then every rate applies one churn round (replace + incremental
/// rebuild) and bills it.
pub fn churn_rows(scale: &Scale) -> Vec<ChurnRow> {
    let docs = corpus(scale);
    let queries = crate::workload();

    // Per strategy: a live warehouse and its per-run query savings.
    let mut fleet = Vec::new();
    for strategy in STRATEGIES {
        let (mut w, _) = strategy_warehouse(strategy, &docs);
        w.set_query_pool(Pool::new(1, InstanceType::Large));
        let indexed = w.run_workload(&queries, 1).cost.total();
        let baseline = w.run_workload_no_index(&queries, 1).cost.total();
        fleet.push((strategy, w, baseline.signed_diff(indexed)));
    }

    // The advisor prices the same trade on a small sample.
    let sample: Vec<(String, String)> = docs.iter().take(docs.len().min(30)).cloned().collect();

    let mut rows = Vec::new();
    let mut retracted_total = 0u64;
    let mut advisor_flip = 0u64;
    for (round, &rate_pct) in RATES.iter().enumerate() {
        let replaced = (docs.len() as u64 * rate_pct).div_ceil(100) as usize;
        let mut per_strategy = Vec::new();
        for (strategy, w, benefit) in fleet.iter_mut() {
            let maintenance = if replaced == 0 {
                Money::ZERO
            } else {
                // New versions: the same document slots regenerated under
                // a round-specific seed, so every replaced document truly
                // changes and old entries go stale.
                let mut cc = scale.corpus_config();
                cc.seed = scale.seed ^ (round as u64).wrapping_mul(0x9E37_79B9) ^ 0xC0DE;
                w.upload_documents(
                    docs.iter()
                        .take(replaced)
                        .enumerate()
                        .map(|(i, (uri, _))| (uri.clone(), generate_document(&cc, i).xml)),
                );
                let report = w.build_index();
                retracted_total += report.retracted_items;
                report.cost.total()
            };
            per_strategy.push((
                strategy.name(),
                maintenance,
                *benefit - maintenance.pico() as i128,
            ));
        }
        let best = per_strategy
            .iter()
            .filter(|(_, _, net)| *net > 0)
            .max_by_key(|(_, _, net)| *net)
            .map_or("none", |(name, _, _)| name);
        let advice = advise_churn(
            &sample,
            &queries,
            ADVISOR_RUNS,
            1.0,
            rate_pct as f64 / 100.0,
            &WarehouseConfig::default(),
        );
        let advisor = advice.best().strategy.map_or("none", |s| s.name());
        if advisor == "none" && advisor_flip == 0 {
            // Rate 0 can't flip: the advisor charges no maintenance there.
            advisor_flip = rate_pct.max(1);
        }
        rows.push(ChurnRow {
            rate_pct,
            replaced,
            per_strategy,
            best,
            advisor,
        });
    }

    let flips = STRATEGIES
        .iter()
        .enumerate()
        .filter(|(si, _)| {
            rows.first().is_some_and(|r| r.per_strategy[*si].2 > 0)
                && rows.last().is_some_and(|r| r.per_strategy[*si].2 <= 0)
        })
        .count() as u64;
    CHURN_POINTS.store(rows.len() as u64, Ordering::Relaxed);
    CHURN_FLIPS.store(flips, Ordering::Relaxed);
    CHURN_RETRACTED_ITEMS.store(retracted_total, Ordering::Relaxed);
    CHURN_ADVISOR_FLIP_PCT.store(advisor_flip, Ordering::Relaxed);
    rows
}

/// The `repro churn` artifact.
pub fn churn(scale: &Scale) -> TextTable {
    render(&churn_rows(scale))
}

/// Renders already-computed rows.
pub fn render(rows: &[ChurnRow]) -> TextTable {
    let mut t = TextTable::new([
        "churn %/run",
        "replaced",
        "LU net ($)",
        "LUP net ($)",
        "LUI net ($)",
        "2LUPI net ($)",
        "LUP-PD net ($)",
        "LUP maint ($)",
        "best",
        "advisor",
    ]);
    for r in rows {
        let net = |i: usize| format!("{:+.4}", r.per_strategy[i].2 as f64 / 1e12);
        t.row([
            r.rate_pct.to_string(),
            r.replaced.to_string(),
            net(0),
            net(1),
            net(2),
            net(3),
            net(4),
            format!("${:.4}", r.per_strategy[1].1.dollars()),
            r.best.to_string(),
            r.advisor.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_strategy_crosses_over_and_the_advisor_flips() {
        let rows = churn_rows(&Scale::tiny());
        assert_eq!(rows.len(), RATES.len());
        let (first, last) = (&rows[0], rows.last().unwrap());

        // Static corpus: no maintenance, every index saves money per run,
        // and both the measurement and the advisor pick an index.
        assert_eq!(first.replaced, 0);
        for (name, maint, net) in &first.per_strategy {
            assert_eq!(*maint, Money::ZERO, "{name}");
            assert!(*net > 0, "{name} must save money on a static corpus");
        }
        assert_ne!(first.best, "none");
        assert_ne!(first.advisor, "none", "{first:?}");

        // Full churn: re-indexing the whole corpus every run costs more
        // than any strategy's query savings — indexing is a net loss and
        // the advisor agrees.
        for (name, maint, net) in &last.per_strategy {
            assert!(*maint > Money::ZERO, "{name}");
            assert!(*net < 0, "{name} must lose money at 100% churn");
        }
        assert_eq!(last.best, "none");
        assert_eq!(last.advisor, "none", "{last:?}");

        // Maintenance only grows with the churn rate, so each strategy's
        // net crosses zero exactly once: the crossover is well defined
        // and every strategy has one inside the sweep.
        for (si, strategy) in STRATEGIES.iter().enumerate() {
            for w in rows.windows(2) {
                assert!(
                    w[0].per_strategy[si].1 <= w[1].per_strategy[si].1,
                    "{}: maintenance must be monotone in the churn rate",
                    strategy.name()
                );
            }
        }
        assert_eq!(CHURN_FLIPS.load(Ordering::Relaxed), STRATEGIES.len() as u64);
        assert!(CHURN_RETRACTED_ITEMS.load(Ordering::Relaxed) > 0);
        let flip = CHURN_ADVISOR_FLIP_PCT.load(Ordering::Relaxed);
        assert!(
            (1..=100).contains(&flip),
            "the advisor must flip to index-nothing within the sweep (got {flip})"
        );
    }

    #[test]
    fn same_scale_same_table() {
        let scale = Scale::tiny();
        let a = render(&churn_rows(&scale));
        let b = render(&churn_rows(&scale));
        assert_eq!(a.to_string(), b.to_string());
    }
}
