//! The trace artifact (beyond the paper's figures): the full pipeline —
//! upload, index build, query workload — with the span recorder on,
//! exported as a Chrome trace-event JSON file plus summary tables.
//!
//! Recording is observation-only (the run is bit-identical to a
//! recorder-off run; `tests/observability.rs` asserts it), so the trace is
//! a faithful timeline of exactly the run the other artifacts measure:
//! every billed service call, throttle and actor phase as a lane-per-actor
//! span, every span priced under the run's price table. The tables printed
//! alongside are the roll-ups `amada-obs` derives from the same spans: a
//! service × operation summary, the Figure 12-style cost attribution by
//! warehouse phase, and a per-service saturation series in one-second
//! virtual-time buckets.

use crate::{build_warehouse, corpus, workload, Scale, TextTable};
use amada_cloud::{ServiceKind, SimDuration, Span};
use amada_core::WarehouseConfig;
use amada_index::Strategy;
use amada_obs::{
    chrome_trace, render_summary, summarize, validate_json, Attribution, ServiceSeries,
};
use std::sync::atomic::{AtomicU64, Ordering};

/// File the Chrome trace is exported to (working directory).
pub const TRACE_PATH: &str = "TRACE_repro.json";

/// Spans recorded by the last `trace` run (surfaced in
/// `BENCH_repro.json`; zero when the artifact was not selected).
pub static TRACE_SPANS: AtomicU64 = AtomicU64::new(0);

/// Non-empty series buckets derived by the last `trace` run.
pub static TRACE_BUCKETS: AtomicU64 = AtomicU64::new(0);

/// Width of the saturation-series buckets (virtual time).
pub const BUCKET_WIDTH: SimDuration = SimDuration::from_secs(1);

/// Runs the recorded pipeline and returns `(report body, trace JSON)`
/// without touching the filesystem (tests call this directly).
pub fn trace_parts(scale: &Scale) -> (String, String) {
    let docs = corpus(scale);
    let queries = workload();
    let mut cfg = WarehouseConfig::with_strategy(Strategy::Lup);
    cfg.host.record = true;
    let (mut w, build) = build_warehouse(cfg, &docs);
    let run = w.run_workload(&queries, scale.workload_repeats);

    let spans = w.spans();
    let world = w.world();
    let json = chrome_trace(&spans, world.ec2.records(), &world.prices);
    validate_json(&json).expect("exported trace must be valid JSON");

    TRACE_SPANS.store(spans.len() as u64, Ordering::Relaxed);
    TRACE_BUCKETS.store(bucket_count(&spans), Ordering::Relaxed);

    let mut body = String::new();
    body.push_str(&format!(
        "{} spans over {:.3}s of virtual time (build {:.3}s + workload {:.3}s)\n\n",
        spans.len(),
        (build.total_time + run.total_time).as_secs_f64(),
        build.total_time.as_secs_f64(),
        run.total_time.as_secs_f64(),
    ));
    body.push_str("-- service x operation summary --\n");
    body.push_str(&render_summary(&summarize(&spans)));
    body.push_str("\n-- billed cost by phase and service --\n");
    body.push_str(&Attribution::attribute(&spans).render_by_phase());
    body.push_str("\n-- saturation series (1s virtual-time buckets) --\n");
    body.push_str(&series_table(&spans).to_string());
    (body, json)
}

/// The trace artifact: runs the recorded pipeline, writes [`TRACE_PATH`],
/// and returns the summary tables.
pub fn trace(scale: &Scale) -> String {
    let (mut body, json) = trace_parts(scale);
    match std::fs::write(TRACE_PATH, &json) {
        Ok(()) => body.push_str(&format!(
            "\nwrote {TRACE_PATH} ({} bytes) - open in chrome://tracing or Perfetto\n",
            json.len()
        )),
        Err(e) => body.push_str(&format!("\nwarning: could not write {TRACE_PATH}: {e}\n")),
    }
    body
}

/// Non-empty buckets across all per-service series.
fn bucket_count(spans: &[Span]) -> u64 {
    ServiceKind::ALL
        .iter()
        .map(|&svc| {
            ServiceSeries::build(spans, svc, BUCKET_WIDTH)
                .buckets
                .iter()
                .filter(|b| b.requests > 0 || b.in_flight > 0)
                .count() as u64
        })
        .sum()
}

/// Per-service series roll-up: bucket counts, peak request rate, peak
/// utilization and worst throttle rate.
fn series_table(spans: &[Span]) -> TextTable {
    let mut t = TextTable::new([
        "Service",
        "Buckets",
        "Requests",
        "Peak req/bucket",
        "Peak in-flight",
        "Peak util",
        "Peak throttle",
    ]);
    for svc in ServiceKind::ALL {
        let s = ServiceSeries::build(spans, svc, BUCKET_WIDTH);
        if s.buckets.is_empty() {
            continue;
        }
        let peak_req = s.buckets.iter().map(|b| b.requests).max().unwrap_or(0);
        let peak_inflight = s.buckets.iter().map(|b| b.in_flight).max().unwrap_or(0);
        let peak_util = (0..s.buckets.len())
            .map(|i| s.utilization(i))
            .fold(0.0f64, f64::max);
        let peak_throttle = (0..s.buckets.len())
            .map(|i| s.throttle_rate(i))
            .fold(0.0f64, f64::max);
        t.row([
            svc.label().to_string(),
            s.buckets.len().to_string(),
            s.total_requests().to_string(),
            peak_req.to_string(),
            peak_inflight.to_string(),
            format!("{peak_util:.3}"),
            format!("{peak_throttle:.3}"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use amada_cloud::{Money, Phase};

    #[test]
    fn trace_artifact_is_valid_and_attributed() {
        let scale = Scale::tiny();
        let (body, json) = trace_parts(&scale);
        validate_json(&json).expect("trace JSON validates");
        assert!(json.contains("\"traceEvents\""));
        assert!(body.contains("service x operation summary"));
        assert!(TRACE_SPANS.load(Ordering::Relaxed) > 0);
        assert!(TRACE_BUCKETS.load(Ordering::Relaxed) > 0);

        // The pipeline touches every phase the warehouse tags; attribution
        // must see money in upload, build and query.
        let docs = corpus(&scale);
        let queries = workload();
        let mut cfg = WarehouseConfig::with_strategy(Strategy::Lup);
        cfg.host.record = true;
        let (mut w, _) = build_warehouse(cfg, &docs);
        let _ = w.run_workload(&queries, scale.workload_repeats);
        let a = Attribution::attribute(&w.spans());
        assert!(a.phases_sum_to_total());
        for phase in [Phase::Upload, Phase::Build, Phase::Query] {
            assert!(
                a.phase(phase) > Money::ZERO,
                "phase {} attributed no cost",
                phase.label()
            );
        }
        assert!(!a.by_query.is_empty(), "per-query attribution is empty");
    }
}
