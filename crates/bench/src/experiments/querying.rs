//! Query experiments: Table 5 (look-up precision), Figure 9 (response
//! times and their decomposition), Figure 11 (per-query costs), Figure 12
//! (workload cost decomposition).

use crate::{corpus, strategy_warehouse, Scale, TextTable};
use amada_cloud::{CostReport, InstanceType, Money};
use amada_core::{CostedQuery, Pool};
use amada_index::Strategy;
use amada_pattern::Query;
use std::collections::HashMap;

/// All per-query runs the querying artifacts read from: every query ×
/// {no-index, LU, LUP, LUI, 2LUPI} × {large, extra-large} query instance.
pub struct QuerySuite {
    /// Scale used.
    pub scale: Scale,
    /// The workload, in order.
    pub queries: Vec<Query>,
    /// `(query name, instance label)` → baseline run.
    pub no_index: HashMap<(String, &'static str), CostedQuery>,
    /// `(query name, strategy, instance label)` → indexed run.
    pub indexed: HashMap<(String, Strategy, &'static str), CostedQuery>,
}

const ITYPES: [InstanceType; 2] = [InstanceType::Large, InstanceType::ExtraLarge];

/// Runs the whole query matrix (the expensive part; every figure below
/// just renders a slice of it). One independent warehouse per strategy —
/// each owns its own simulated cloud and virtual clock — so the four run
/// concurrently across host threads; the per-query runs within a
/// warehouse stay sequential (they share its virtual timeline).
pub fn query_suite(scale: &Scale) -> QuerySuite {
    let docs = corpus(scale);
    let queries = crate::workload();
    type Indexed = Vec<((String, Strategy, &'static str), CostedQuery)>;
    type Baseline = Vec<((String, &'static str), CostedQuery)>;
    let per_strategy: Vec<(Indexed, Baseline)> = amada_par::par_run(
        Strategy::ALL
            .iter()
            .map(|&strategy| {
                let docs = &docs;
                let queries = &queries;
                move || {
                    let mut indexed = Vec::new();
                    let mut no_index = Vec::new();
                    let (mut w, _) = strategy_warehouse(strategy, docs);
                    for itype in ITYPES {
                        w.set_query_pool(Pool::new(1, itype));
                        for q in queries {
                            let name = q.name.clone().expect("workload queries are named");
                            let run = w.run_query(q);
                            indexed.push(((name, strategy, itype.label()), run));
                        }
                        // The no-index baseline is strategy-independent; run
                        // it once, piggybacking on the LU warehouse (the
                        // index is not touched).
                        if strategy == Strategy::Lu {
                            for q in queries {
                                let name = q.name.clone().expect("workload queries are named");
                                let run = w.run_query_no_index(q);
                                no_index.push(((name, itype.label()), run));
                            }
                        }
                    }
                    (indexed, no_index)
                }
            })
            .collect(),
    );
    let mut no_index = HashMap::new();
    let mut indexed = HashMap::new();
    for (idx, base) in per_strategy {
        indexed.extend(idx);
        no_index.extend(base);
    }
    QuerySuite {
        scale: scale.clone(),
        queries,
        no_index,
        indexed,
    }
}

impl QuerySuite {
    fn names(&self) -> impl Iterator<Item = &str> {
        self.queries
            .iter()
            .map(|q| q.name.as_deref().expect("named"))
    }

    /// The indexed run for `(query, strategy, itype)`.
    pub fn run(&self, name: &str, s: Strategy, itype: &'static str) -> &CostedQuery {
        &self.indexed[&(name.to_string(), s, itype)]
    }

    /// The baseline run for `(query, itype)`.
    pub fn baseline(&self, name: &str, itype: &'static str) -> &CostedQuery {
        &self.no_index[&(name.to_string(), itype)]
    }
}

/// Paper Table 5: per query, the number of document IDs retrieved from
/// the index under each strategy, the number of documents actually
/// containing results, and the result size.
pub fn table5(suite: &QuerySuite) -> TextTable {
    let mut t = TextTable::new([
        "Query",
        "LU",
        "LUP",
        "LUI",
        "2LUPI",
        "# Docs w. results",
        "Results size (KB)",
    ]);
    for name in suite.names() {
        let base = suite.baseline(name, "l");
        let cells = vec![
            name.to_string(),
            suite
                .run(name, Strategy::Lu, "l")
                .exec
                .docs_from_index
                .to_string(),
            suite
                .run(name, Strategy::Lup, "l")
                .exec
                .docs_from_index
                .to_string(),
            suite
                .run(name, Strategy::Lui, "l")
                .exec
                .docs_from_index
                .to_string(),
            suite
                .run(name, Strategy::TwoLupi, "l")
                .exec
                .docs_from_index
                .to_string(),
            base.exec.docs_with_results.to_string(),
            format!("{:.2}", base.exec.result_bytes as f64 / 1024.0),
        ];
        t.row(cells);
    }
    t
}

/// Paper Figure 9a: response time per query, no-index and per strategy,
/// on large and extra-large instances — plus the 9b/9c decomposition
/// (look-up get / plan execution / transfer + evaluation).
pub fn fig9(suite: &QuerySuite) -> String {
    let mut out = String::new();
    let mut a = TextTable::new(["Query", "Instance", "No index", "LU", "LUP", "LUI", "2LUPI"]);
    for name in suite.names() {
        for itype in ITYPES {
            let l = itype.label();
            let mut cells = vec![name.to_string(), l.to_uppercase()];
            cells.push(format!(
                "{:.3}s",
                suite.baseline(name, l).exec.response_time.as_secs_f64()
            ));
            for s in Strategy::ALL {
                cells.push(format!(
                    "{:.3}s",
                    suite.run(name, s, l).exec.response_time.as_secs_f64()
                ));
            }
            a.row(cells);
        }
    }
    out.push_str("Figure 9a — response time (s) per query and strategy\n");
    out.push_str(&a.to_string());
    for itype in ITYPES {
        let l = itype.label();
        let mut d = TextTable::new([
            "Query",
            "Strategy",
            "Lookup-Get (s)",
            "Plan exec (s)",
            "Transfer+eval (s)",
        ]);
        for name in suite.names() {
            for s in Strategy::ALL {
                let p = suite.run(name, s, l).exec.phases;
                d.row([
                    name.to_string(),
                    s.name().to_string(),
                    format!("{:.4}", p.lookup_get.as_secs_f64()),
                    format!("{:.4}", p.plan.as_secs_f64()),
                    format!("{:.4}", p.transfer_eval.as_secs_f64()),
                ]);
            }
        }
        out.push_str(&format!(
            "\nFigure 9{} — phase decomposition on {} instances\n",
            if l == "l" { 'b' } else { 'c' },
            l.to_uppercase()
        ));
        out.push_str(&d.to_string());
    }
    out
}

/// Paper Figure 11: monetary cost per query, no-index and per strategy,
/// on large and extra-large instances.
pub fn fig11(suite: &QuerySuite) -> TextTable {
    let mut t = TextTable::new(["Query", "Instance", "No index", "LU", "LUP", "LUI", "2LUPI"]);
    for name in suite.names() {
        for itype in ITYPES {
            let l = itype.label();
            let mut cells = vec![name.to_string(), l.to_uppercase()];
            cells.push(format!(
                "${:.6}",
                suite.baseline(name, l).cost.total().dollars()
            ));
            for s in Strategy::ALL {
                cells.push(format!(
                    "${:.6}",
                    suite.run(name, s, l).cost.total().dollars()
                ));
            }
            t.row(cells);
        }
    }
    t
}

/// Sums a set of cost reports component-wise.
fn sum_costs<'a>(costs: impl Iterator<Item = &'a CostReport>) -> CostReport {
    let mut total = CostReport {
        s3: Money::ZERO,
        kv: Money::ZERO,
        ec2: Money::ZERO,
        sqs: Money::ZERO,
        egress: Money::ZERO,
    };
    for c in costs {
        total.s3 += c.s3;
        total.kv += c.kv;
        total.ec2 += c.ec2;
        total.sqs += c.sqs;
        total.egress += c.egress;
    }
    total
}

/// Paper Figure 12: the whole-workload cost on an extra-large instance,
/// decomposed across services (DynamoDB / S3 / EC2 / SQS / AWSDown), for
/// the no-index baseline and each strategy.
pub fn fig12(suite: &QuerySuite) -> TextTable {
    let mut t = TextTable::new([
        "Configuration",
        "DynamoDB",
        "S3",
        "EC2",
        "SQS",
        "AWSDown",
        "Total",
    ]);
    let render = |label: String, c: CostReport, t: &mut TextTable| {
        t.row([
            label,
            format!("${:.6}", c.kv.dollars()),
            format!("${:.6}", c.s3.dollars()),
            format!("${:.6}", c.ec2.dollars()),
            format!("${:.6}", c.sqs.dollars()),
            format!("${:.6}", c.egress.dollars()),
            format!("${:.6}", c.total().dollars()),
        ]);
    };
    let names: Vec<&str> = suite.names().collect();
    render(
        "No Index".into(),
        sum_costs(names.iter().map(|n| &suite.baseline(n, "xl").cost)),
        &mut t,
    );
    for s in Strategy::ALL {
        render(
            s.name().into(),
            sum_costs(names.iter().map(|n| &suite.run(n, s, "xl").cost)),
            &mut t,
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite() -> QuerySuite {
        query_suite(&Scale::tiny())
    }

    #[test]
    fn query_matrix_shapes_match_paper() {
        let s = suite();
        // --- Table 5 invariants: LU ⊇ LUP ⊇ LUI = 2LUPI ⊇ with-results.
        for name in ["q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8", "q9", "q10"] {
            let lu = s.run(name, Strategy::Lu, "l").exec.docs_from_index;
            let lup = s.run(name, Strategy::Lup, "l").exec.docs_from_index;
            let lui = s.run(name, Strategy::Lui, "l").exec.docs_from_index;
            let lupi = s.run(name, Strategy::TwoLupi, "l").exec.docs_from_index;
            let with = s.baseline(name, "l").exec.docs_with_results;
            assert!(lu >= lup, "{name}: LU {lu} >= LUP {lup}");
            assert!(lup >= lui, "{name}: LUP {lup} >= LUI {lui}");
            assert_eq!(lui, lupi, "{name}: LUI == 2LUPI");
            assert!(lui >= with, "{name}: LUI {lui} >= with-results {with}");
        }
        // LUI is exact (no false positives) on the single-pattern queries.
        for name in ["q1", "q2", "q3", "q5", "q6", "q7"] {
            let lui = s.run(name, Strategy::Lui, "l").exec.docs_from_index;
            let with = s.baseline(name, "l").exec.docs_with_results;
            assert_eq!(lui, with, "{name}: LUI exact");
        }

        // --- Figure 9: every index beats no-index; xl beats l.
        for name in ["q2", "q6", "q7"] {
            let base = s.baseline(name, "l").exec.response_time;
            for st in Strategy::ALL {
                let t = s.run(name, st, "l").exec.response_time;
                assert!(t < base, "{name}/{st}: {t} < {base}");
                let txl = s.run(name, st, "xl").exec.response_time;
                assert!(txl <= t, "{name}/{st}: xl {txl} <= l {t}");
            }
        }

        // --- Figure 11: indexing saves the overwhelming share of cost.
        // Egress is excluded from the comparison: the same results leave
        // the cloud either way, so that charge is identical and, at this
        // tiny test scale, would mask the effect the paper measures at
        // 40 GB (where it is comparatively small).
        let mut base_total = 0.0;
        let mut best_total = f64::MAX;
        for st in Strategy::ALL {
            let total: f64 = s
                .queries
                .iter()
                .map(|q| {
                    let c = &s.run(q.name.as_deref().unwrap(), st, "l").cost;
                    (c.total() - c.egress).dollars()
                })
                .sum();
            best_total = best_total.min(total);
        }
        for q in &s.queries {
            let c = &s.baseline(q.name.as_deref().unwrap(), "l").cost;
            base_total += (c.total() - c.egress).dollars();
        }
        // At this tiny scale (60 documents) the workload's candidate
        // fractions are far larger than at the paper's 20 000 documents,
        // so the achievable saving is bounded; the default-scale repro run
        // shows the paper's order-of-magnitude gap.
        assert!(
            best_total < 0.65 * base_total,
            "indexed {best_total} vs baseline {base_total}"
        );
        // Every strategy must nevertheless be strictly cheaper than the
        // scan for the whole workload.
        for st in Strategy::ALL {
            let total: f64 = s
                .queries
                .iter()
                .map(|q| {
                    let c = &s.run(q.name.as_deref().unwrap(), st, "l").cost;
                    (c.total() - c.egress).dollars()
                })
                .sum();
            assert!(total < base_total, "{st}: {total} vs {base_total}");
        }

        // --- Figure 12 rows render.
        assert_eq!(fig12(&s).len(), 5);
        assert_eq!(table5(&s).len(), 10);
        assert_eq!(fig11(&s).len(), 20);
        assert!(fig9(&s).contains("Figure 9a"));
    }
}
