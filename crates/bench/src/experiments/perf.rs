//! `repro perf` — hot-path microbenchmarks (beyond the paper).
//!
//! Self-timed before/after measurements of the four kernels the PR
//! optimises, at the requested corpus scale (`1x`) and ten times that
//! (`10x`):
//!
//! * **parse** — zero-copy XML parsing throughput (MiB/s of source).
//! * **tokenize** — streaming [`amada_xml::for_each_word`] vs. the legacy
//!   collecting tokenizer (MiB/s of text content).
//! * **decode** — full postings-list decode throughput (million IDs/s)
//!   over the per-document ID lists the store keeps, with the one-byte
//!   varint fast path. Absolute, like parse: an in-binary copy of the
//!   pre-fast-path reader compiles to near-identical code (the compiler
//!   re-optimises it), so the honest before number is the cross-build
//!   kernel measurement in `EXPERIMENTS.md`. This rate is also the
//!   regression-guard metric for `--enforce`.
//! * **twig** — the holistic twig join over corpus-scale merged postings:
//!   galloping (exponential probe + binary search) advance vs. the legacy
//!   element-at-a-time linear advance (ns per stream entry).
//!
//! Host wall-clock timing makes the output nondeterministic, so `perf` is
//! *not* part of `repro all` (which stays byte-comparable run to run).
//! The measured rates land in `BENCH_repro.json`; `repro perf --enforce`
//! additionally fails the process when a release build regresses more
//! than [`REGRESSION_TOLERANCE`] past the repo-pinned reference rates —
//! the CI smoke guard for the parse, tokenize and decode throughputs and
//! the twig-join latency (the one lower-is-better pin).

use crate::{Scale, TextTable};
use amada_index::codec::{decode_ids, encode_ids, BlockList};
use amada_pattern::parse_pattern;
use amada_pattern::twig::{holistic_twig_join, holistic_twig_join_linear, TwigShape};
use amada_xml::{for_each_word, Document, StructuralId};
use std::hint::black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Repo-pinned release-build reference rates for the `--enforce` floors.
/// Deliberately conservative (roughly half of what a developer-class x86
/// host measures) so ordinary CI jitter passes and only a real fast-path
/// regression trips the guard.
pub const PINNED_PARSE_MIBPS: f64 = 60.0;
/// See [`PINNED_PARSE_MIBPS`]; full-decode rate in million IDs per second.
pub const PINNED_DECODE_MIDS: f64 = 60.0;
/// See [`PINNED_PARSE_MIBPS`]; streaming-tokenizer rate in MiB/s of text.
pub const PINNED_TOKENIZE_MIBPS: f64 = 70.0;
/// Galloping twig-join ceiling in ns per stream entry — the one
/// lower-is-better pin, set at roughly twice what a developer-class x86
/// host measures.
pub const PINNED_TWIG_NS: f64 = 2.5;
/// Fraction past the pinned rate that still passes (`0.30` = fail only
/// when more than 30% slower than the pin, in whichever direction the
/// axis calls slower).
pub const REGRESSION_TOLERANCE: f64 = 0.30;

const MIB: f64 = 1024.0 * 1024.0;

/// The last run's JSON fragment and 1x measurements, for
/// `BENCH_repro.json` and `--enforce` (the artifact body itself only
/// carries formatted text through the harness).
struct PerfRun {
    json: String,
    parse_mibps: f64,
    decode_mids: f64,
    tok_mibps: f64,
    twig_ns: f64,
}

static LAST_RUN: Mutex<Option<PerfRun>> = Mutex::new(None);

/// Runs `f` repeatedly for at least ~120 ms after a short warm-up and
/// returns the mean seconds per iteration (same auto-calibration as the
/// `kernels` bench harness).
fn time_per_iter(mut f: impl FnMut()) -> f64 {
    const WARMUP: Duration = Duration::from_millis(20);
    const MIN_RUN: Duration = Duration::from_millis(120);
    let start = Instant::now();
    let mut warm_iters: u64 = 0;
    while start.elapsed() < WARMUP {
        f();
        warm_iters += 1;
    }
    let per_iter = WARMUP.as_secs_f64() / warm_iters.max(1) as f64;
    let batch = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
    let mut iters: u64 = 0;
    let timed = Instant::now();
    while timed.elapsed() < MIN_RUN {
        for _ in 0..batch {
            f();
        }
        iters += batch;
    }
    timed.elapsed().as_secs_f64() / iters as f64
}

/// One scale's worth of measurements.
struct Axes {
    parse_mibps: f64,
    dec_label: &'static str,
    tok_legacy_mibps: f64,
    tok_new_mibps: f64,
    dec_full_mids: f64,
    dec_list_len: usize,
    twig_linear_ns: f64,
    twig_gallop_ns: f64,
}

/// The legacy tokenizer, kept inline as the before-measurement: collects
/// owned lowercased words char by char (one `String` per word plus the
/// `Vec`), exactly what `tokenize` did before the streaming rewrite.
fn legacy_tokenize(text: &str) -> Vec<String> {
    let mut words = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            for lc in c.to_lowercase() {
                current.push(lc);
            }
        } else if !current.is_empty() {
            words.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        words.push(current);
    }
    words
}

/// Concatenates every document's postings for `label` into one long
/// sorted list, offsetting *(pre, post)* per document as if the corpus
/// were a single concatenated tree — list length then scales with the
/// corpus, as the paper's per-key ID lists do.
fn merged_postings(docs: &[Document], label: &str) -> Vec<StructuralId> {
    let mut out = Vec::new();
    let mut offset = 0u32;
    for d in docs {
        for &n in d.elements_named(label) {
            let sid = d.sid(n);
            out.push(StructuralId::new(
                sid.pre + offset,
                sid.post + offset,
                sid.depth,
            ));
        }
        offset += d.node_count() as u32 + 1;
    }
    out
}

fn run_axes(scale: &Scale) -> Axes {
    let sources = crate::corpus(scale);
    let source_bytes: u64 = sources.iter().map(|(_, x)| x.len() as u64).sum();

    // -- parse ------------------------------------------------------------
    let per = time_per_iter(|| {
        for (uri, xml) in &sources {
            black_box(Document::parse_str(uri.clone(), black_box(xml)).unwrap());
        }
    });
    let parse_mibps = source_bytes as f64 / per / MIB;

    let docs: Vec<Document> = sources
        .iter()
        .map(|(u, x)| Document::parse_str(u.clone(), x).unwrap())
        .collect();

    // -- tokenize ---------------------------------------------------------
    let texts: Vec<String> = docs
        .iter()
        .flat_map(|d| d.all_nodes().filter_map(|n| d.value(n).map(str::to_string)))
        .collect();
    let text_bytes: u64 = texts.iter().map(|t| t.len() as u64).sum();
    let per = time_per_iter(|| {
        for t in &texts {
            black_box(legacy_tokenize(black_box(t)));
        }
    });
    let tok_legacy_mibps = text_bytes as f64 / per / MIB;
    let per = time_per_iter(|| {
        let mut n = 0usize;
        for t in &texts {
            for_each_word(black_box(t), |w| n += w.len());
        }
        black_box(n);
    });
    let tok_new_mibps = text_bytes as f64 / per / MIB;

    // -- decode -----------------------------------------------------------
    // The most frequent element label gives the longest real ID list.
    let label = {
        let mut best = ("item", 0usize);
        for l in ["item", "text", "bold", "listitem", "parlist", "keyword"] {
            let n: usize = docs.iter().map(|d| d.elements_named(l).len()).sum();
            if n > best.1 {
                best = (l, n);
            }
        }
        best.0
    };
    // Per-document lists, exactly the shape `lookup` decodes from the
    // store: small in-document (pre, post) values, where the one-byte
    // varint fast path pays off. (A corpus-merged list would offset every
    // ID into multi-byte territory and measure memory bandwidth instead.)
    let flats: Vec<Vec<u8>> = docs
        .iter()
        .map(|d| {
            let ids: Vec<StructuralId> =
                d.elements_named(label).iter().map(|&n| d.sid(n)).collect();
            encode_ids(&ids)
        })
        .filter(|f| !f.is_empty())
        .collect();
    let total_ids: usize = merged_postings(&docs, label).len();
    assert!(total_ids > 0, "corpus has no '{label}' elements");
    let per = time_per_iter(|| {
        for f in &flats {
            black_box(decode_ids(black_box(f)).unwrap().len());
        }
    });
    let dec_full_mids = total_ids as f64 / per / 1e6;
    // Sanity: the lazy block layer over the same bytes agrees.
    for f in &flats {
        let n = decode_ids(f).unwrap().len();
        assert_eq!(BlockList::from_flat(f).map(|l| l.len()), Some(n));
    }

    // -- twig -------------------------------------------------------------
    // Corpus-scale join over the merged per-label postings (cross-document
    // entries can never be ancestor-related, so the merged join's matches
    // are exactly the union of the per-document matches). Streams come
    // pre-decoded for both sides: this axis isolates the join algorithm —
    // galloping skip-to-pre vs. the element-at-a-time linear advance.
    // A selective anchor over a dense descendant stream — the shape the
    // galloping advance targets: almost all `text` entries lie outside
    // `category` subtrees and are skipped in whole binary-searched runs
    // instead of being advanced one element at a time.
    let pattern = parse_pattern("//category[//text{val}]").unwrap();
    let shape = TwigShape::from_pattern(&pattern);
    let labels = ["category", "text"];
    assert_eq!(labels.len(), shape.parent.len(), "labels out of sync");
    let streams: Vec<Vec<(StructuralId, ())>> = labels
        .iter()
        .map(|l| {
            merged_postings(&docs, l)
                .into_iter()
                .map(|sid| (sid, ()))
                .collect()
        })
        .collect();
    let twig_entries: u64 = streams.iter().map(|s| s.len() as u64).sum();
    let per = time_per_iter(|| {
        black_box(holistic_twig_join_linear(&shape, black_box(&streams)).len());
    });
    let twig_linear_ns = per * 1e9 / twig_entries.max(1) as f64;
    let per = time_per_iter(|| {
        black_box(holistic_twig_join(&shape, black_box(&streams)).len());
    });
    let twig_gallop_ns = per * 1e9 / twig_entries.max(1) as f64;

    Axes {
        parse_mibps,
        dec_label: label,
        tok_legacy_mibps,
        tok_new_mibps,
        dec_full_mids,
        dec_list_len: total_ids,
        twig_linear_ns,
        twig_gallop_ns,
    }
}

/// Runs all four axes at `1x` and `10x` of `scale`, returning the report
/// body and stashing the JSON fragment for `BENCH_repro.json`.
pub fn perf(scale: &Scale) -> String {
    let one = run_axes(scale);
    let ten = run_axes(&scale.clone().scaled(10.0));

    let mut t = TextTable::new(["axis", "scale", "before", "after", "speedup"]);
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "    \"build\": \"{}\",\n    \"axes\": [\n",
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        }
    ));
    let push = |t: &mut TextTable,
                json: &mut String,
                axis: &str,
                scale_label: &str,
                before: Option<f64>,
                after: f64,
                unit: &str,
                lower_is_better: bool,
                last: bool| {
        let speedup = before.map(|b| {
            if lower_is_better {
                b / after
            } else {
                after / b
            }
        });
        t.row([
            axis.to_string(),
            scale_label.to_string(),
            before.map_or_else(|| "-".to_string(), |b| format!("{b:.2} {unit}")),
            format!("{after:.2} {unit}"),
            speedup.map_or_else(|| "-".to_string(), |s| format!("{s:.2}x")),
        ]);
        let before_json = before.map_or_else(|| "null".to_string(), |b| format!("{b:.4}"));
        let speedup_json = speedup.map_or_else(|| "null".to_string(), |s| format!("{s:.4}"));
        json.push_str(&format!(
            "      {{ \"axis\": \"{axis}\", \"scale\": \"{scale_label}\", \"unit\": \"{unit}\", \
             \"before\": {before_json}, \"after\": {after:.4}, \"speedup\": {speedup_json} }}{}\n",
            if last { "" } else { "," }
        ));
    };
    for (label, a) in [("1x", &one), ("10x", &ten)] {
        push(
            &mut t,
            &mut json,
            "parse",
            label,
            None,
            a.parse_mibps,
            "MiB/s",
            false,
            false,
        );
        push(
            &mut t,
            &mut json,
            "tokenize",
            label,
            Some(a.tok_legacy_mibps),
            a.tok_new_mibps,
            "MiB/s",
            false,
            false,
        );
        push(
            &mut t,
            &mut json,
            "decode",
            label,
            None,
            a.dec_full_mids,
            "M IDs/s",
            false,
            false,
        );
        push(
            &mut t,
            &mut json,
            "twig-join",
            label,
            Some(a.twig_linear_ns),
            a.twig_gallop_ns,
            "ns/id",
            true,
            label == "10x",
        );
    }
    json.push_str("    ],\n");
    json.push_str(&format!(
        "    \"decode_full_mids_1x\": {:.4},\n    \"parse_mibps_1x\": {:.4}\n  }}",
        one.dec_full_mids, one.parse_mibps
    ));
    *LAST_RUN.lock().unwrap() = Some(PerfRun {
        json,
        parse_mibps: one.parse_mibps,
        decode_mids: one.dec_full_mids,
        tok_mibps: one.tok_new_mibps,
        twig_ns: one.twig_gallop_ns,
    });

    format!(
        "{t}\n\
         before = legacy paths kept in-tree (collecting tokenizer, linear\n\
         element-at-a-time join); after = the streaming / galloping code now\n\
         used by the warehouse. parse and decode are absolute: their pre-PR\n\
         paths are gone from the tree, so the before numbers are the\n\
         cross-build kernel measurements in EXPERIMENTS.md. decode runs over\n\
         the per-document '{}'-label lists the store keeps ({} IDs at 1x).",
        one.dec_label, one.dec_list_len
    )
}

/// The JSON fragment of the last [`perf`] run (for `BENCH_repro.json`).
pub fn perf_json() -> Option<String> {
    LAST_RUN.lock().unwrap().as_ref().map(|r| r.json.clone())
}

/// Enforces the repo-pinned floors (and the twig ceiling) against the
/// last [`perf`] run. Returns a human-readable pass message, or an error
/// describing the regression. Debug builds skip the check (the pins are
/// release rates).
pub fn enforce_floors() -> Result<String, String> {
    let guard = LAST_RUN.lock().unwrap();
    let Some(PerfRun {
        parse_mibps,
        decode_mids,
        tok_mibps,
        twig_ns,
        ..
    }) = guard.as_ref()
    else {
        return Err("--enforce requires the perf artifact to have run".into());
    };
    if cfg!(debug_assertions) {
        return Ok(format!(
            "floors skipped (debug build): parse {parse_mibps:.1} MiB/s, \
             decode {decode_mids:.1} M IDs/s, tokenize {tok_mibps:.1} MiB/s, \
             twig {twig_ns:.2} ns/id"
        ));
    }
    let tolerance_pct = REGRESSION_TOLERANCE * 100.0;
    // Throughput axes: fail when the measurement falls below the floor.
    for (axis, unit, measured, pinned) in [
        ("parse", "MiB/s", *parse_mibps, PINNED_PARSE_MIBPS),
        ("decode", "M IDs/s", *decode_mids, PINNED_DECODE_MIDS),
        ("tokenize", "MiB/s", *tok_mibps, PINNED_TOKENIZE_MIBPS),
    ] {
        let floor = pinned * (1.0 - REGRESSION_TOLERANCE);
        if measured < floor {
            return Err(format!(
                "{axis} throughput {measured:.1} {unit} is below the floor {floor:.1} \
                 (pinned {pinned:.1} - {tolerance_pct:.0}%)"
            ));
        }
    }
    // The twig join pins a latency, so its guard is a ceiling.
    let twig_ceiling = PINNED_TWIG_NS * (1.0 + REGRESSION_TOLERANCE);
    if *twig_ns > twig_ceiling {
        return Err(format!(
            "twig-join latency {twig_ns:.2} ns/id is above the ceiling {twig_ceiling:.2} \
             (pinned {PINNED_TWIG_NS:.2} + {tolerance_pct:.0}%)"
        ));
    }
    Ok(format!(
        "floors passed: parse {parse_mibps:.1} MiB/s, decode {decode_mids:.1} M IDs/s, \
         tokenize {tok_mibps:.1} MiB/s, twig {twig_ns:.2} ns/id (ceiling {twig_ceiling:.2})"
    ))
}
