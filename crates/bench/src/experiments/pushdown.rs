//! The computation-pushdown experiment (beyond the paper's figures):
//! storage-side filtering (the S3-Select analog) vs. shipping whole
//! documents, swept across predicate selectivity.
//!
//! The paper's four strategies all answer the residual part of a query —
//! whatever the index cannot resolve — by GETting every candidate
//! document and parsing + evaluating it on an EC2 instance. The LUP-PD
//! strategy instead pushes the compiled pattern into the store, which
//! bills per GB *scanned* plus egress on the *filtered* result bytes
//! only. The trade is selectivity-dependent: scanning is cheaper than
//! parsing per byte, but every matching tuple comes back as billed
//! egress, so pushdown wins when few bytes match and loses once the
//! result volume outgrows the parse savings.
//!
//! The sweep holds the candidate set fixed — the knob is a numeric range
//! bound on `open_auction/initial` (uniform in 5.00–100.00), and range
//! predicates contribute no look-up keys, so every strategy fetches the
//! same documents at every point and only the residual-filter economics
//! move. The `cont` output on the auction description makes matching
//! tuples carry real payload, so the egress side of the trade is
//! visible. The tests pin the crossover: LUP-PD strictly cheapest at the
//! most selective bound, beaten by plain LUP at the least selective one.

use crate::{corpus, mb, strategy_warehouse, Scale, TextTable};
use amada_cloud::{Money, SimDuration};
use amada_index::Strategy;
use amada_pattern::{parse_query, Query};
use std::sync::atomic::{AtomicU64, Ordering};

/// Sweep points run (for `BENCH_repro.json`).
pub static PUSHDOWN_POINTS: AtomicU64 = AtomicU64::new(0);
/// Sweep points where LUP-PD was strictly cheapest.
pub static PUSHDOWN_WINS: AtomicU64 = AtomicU64::new(0);
/// Bytes the store scanned across all LUP-PD runs.
pub static PUSHDOWN_SCANNED_BYTES: AtomicU64 = AtomicU64::new(0);
/// Filtered result bytes the scans returned (billed as egress).
pub static PUSHDOWN_RETURNED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Upper bounds on `initial` swept low to high. Initial prices are
/// uniform in 5.00–100.00, so these land at ≈ 0 / 25 / 50 / 75 / 100 %
/// of the auctions.
pub const BOUNDS: [&str; 5] = ["5", "29", "53", "77", "101"];

/// The five competitors, in column order: the four paper strategies and
/// the pushdown variant.
pub const STRATEGIES: [Strategy; 5] = [
    Strategy::Lu,
    Strategy::Lup,
    Strategy::Lui,
    Strategy::TwoLupi,
    Strategy::LupPd,
];

/// The sweep query for one bound: candidates are every document holding
/// open auctions (the labels alone decide that), and the range predicate
/// plus the `cont` output are the residual work under sweep.
fn sweep_query(bound: &str) -> Query {
    let text = format!(
        "//open_auction[//description[/text{{cont}}], //initial{{\"0\"<val<=\"{bound}\"}}]"
    );
    let mut q = parse_query(&text).expect("sweep query parses");
    q.name = Some(format!("initial<={bound}"));
    q
}

/// One sweep point: every strategy's bill for the same query.
#[derive(Debug, Clone)]
pub struct PushdownRow {
    /// The `initial <= bound` sweep knob.
    pub bound: &'static str,
    /// Result tuples (identical across strategies; the selectivity).
    pub results: usize,
    /// Bytes the LUP-PD run scanned server-side.
    pub scanned: u64,
    /// Filtered bytes the LUP-PD scans returned.
    pub returned: u64,
    /// `(strategy name, response time, total $)` in [`STRATEGIES`] order.
    pub per_strategy: Vec<(&'static str, SimDuration, Money)>,
    /// Name of the cheapest strategy at this point.
    pub cheapest: &'static str,
}

/// Runs the sweep: five warehouses share one corpus, each bound runs the
/// same query on all of them.
pub fn pushdown_rows(scale: &Scale) -> Vec<PushdownRow> {
    let docs = corpus(scale);
    let mut warehouses: Vec<_> = STRATEGIES
        .iter()
        .map(|&s| (s, strategy_warehouse(s, &docs).0))
        .collect();
    let mut rows = Vec::new();
    let (mut wins, mut scanned_total, mut returned_total) = (0u64, 0u64, 0u64);
    for bound in BOUNDS {
        let q = sweep_query(bound);
        let mut per_strategy = Vec::new();
        let (mut results, mut scanned, mut returned) = (0usize, 0u64, 0u64);
        for (s, w) in warehouses.iter_mut() {
            let before = w.world().s3.stats();
            let r = w.run_query(&q);
            if *s == Strategy::LupPd {
                let after = w.world().s3.stats();
                results = r.exec.results.len();
                scanned = after.bytes_scanned - before.bytes_scanned;
                returned = after.scan_returned_bytes - before.scan_returned_bytes;
            }
            per_strategy.push((s.name(), r.exec.response_time, r.cost.total()));
        }
        let cheapest = per_strategy
            .iter()
            .min_by_key(|(_, _, total)| *total)
            .expect("five strategies ran")
            .0;
        if cheapest == Strategy::LupPd.name() {
            wins += 1;
        }
        scanned_total += scanned;
        returned_total += returned;
        rows.push(PushdownRow {
            bound,
            results,
            scanned,
            returned,
            per_strategy,
            cheapest,
        });
    }
    PUSHDOWN_POINTS.store(rows.len() as u64, Ordering::Relaxed);
    PUSHDOWN_WINS.store(wins, Ordering::Relaxed);
    PUSHDOWN_SCANNED_BYTES.store(scanned_total, Ordering::Relaxed);
    PUSHDOWN_RETURNED_BYTES.store(returned_total, Ordering::Relaxed);
    rows
}

/// The `repro pushdown` artifact.
pub fn pushdown(scale: &Scale) -> TextTable {
    render(&pushdown_rows(scale))
}

/// Renders already-computed rows.
pub fn render(rows: &[PushdownRow]) -> TextTable {
    let mut t = TextTable::new([
        "initial <=",
        "results",
        "scanned (MB)",
        "returned (MB)",
        "LU ($)",
        "LUP ($)",
        "LUI ($)",
        "2LUPI ($)",
        "LUP-PD ($)",
        "LUP (s)",
        "LUP-PD (s)",
        "cheapest",
    ]);
    for r in rows {
        let dollars = |i: usize| format!("${:.6}", r.per_strategy[i].2.dollars());
        t.row([
            r.bound.to_string(),
            r.results.to_string(),
            mb(r.scanned),
            mb(r.returned),
            dollars(0),
            dollars(1),
            dollars(2),
            dollars(3),
            dollars(4),
            format!("{:.3}", r.per_strategy[1].1.as_secs_f64()),
            format!("{:.3}", r.per_strategy[4].1.as_secs_f64()),
            r.cheapest.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pushdown_wins_at_low_selectivity_and_loses_at_high() {
        let rows = pushdown_rows(&Scale::tiny());
        assert_eq!(rows.len(), BOUNDS.len());
        let (first, last) = (&rows[0], rows.last().unwrap());
        // The bound only loosens along the sweep, so results grow while
        // the candidate set (hence the scanned volume) never moves.
        for w in rows.windows(2) {
            assert!(w[0].results <= w[1].results, "{w:?}");
            assert_eq!(w[0].scanned, w[1].scanned);
            assert!(w[0].returned <= w[1].returned);
        }
        assert!(first.results < last.results, "the sweep must open up");
        assert!(first.returned < last.returned);
        assert!(last.scanned > 0);
        // Answers agree across strategies at every point: they all see the
        // same candidates, so the result count is strategy-independent and
        // already asserted identical through the correctness oracles; here
        // every row carries all five bills for the same tuples.
        for r in &rows {
            assert_eq!(r.per_strategy.len(), STRATEGIES.len());
        }
        // The headline crossover. At the selective end almost nothing
        // comes back, so scanning beats shipping + parsing; at the open
        // end every matching description is billed egress and plain LUP
        // is cheaper again.
        assert_eq!(first.cheapest, "LUP-PD", "{first:?}");
        assert_ne!(last.cheapest, "LUP-PD", "{last:?}");
        let (lup, pd) = (last.per_strategy[1].2, last.per_strategy[4].2);
        assert!(lup < pd, "LUP {lup} must undercut LUP-PD {pd} at 100%");
    }

    #[test]
    fn same_scale_same_table() {
        let scale = Scale::tiny();
        let a = render(&pushdown_rows(&scale));
        let b = render(&pushdown_rows(&scale));
        assert_eq!(a.to_string(), b.to_string());
    }
}
