//! The numbers `repro table4` prints are simulated (virtual-time) results
//! and must not depend on how many host threads computed them.

use amada_bench::experiments as exp;
use amada_bench::Scale;

#[test]
fn table4_is_identical_across_host_thread_counts() {
    // A single test function on purpose: AMADA_THREADS is process-wide.
    let mut scale = Scale::default_scale();
    scale.docs = 24;
    scale.doc_bytes = 800;

    std::env::set_var("AMADA_THREADS", "1");
    let sequential = exp::table4(&exp::indexing_suite(&scale)).to_string();
    std::env::set_var("AMADA_THREADS", "6");
    let parallel = exp::table4(&exp::indexing_suite(&scale)).to_string();
    std::env::remove_var("AMADA_THREADS");

    assert_eq!(sequential, parallel);
}
