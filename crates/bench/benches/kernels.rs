//! Criterion microbenchmarks of the warehouse's hot kernels: XML parsing,
//! holistic twig joins, index extraction per strategy, the structural-ID
//! codec, key-value store operations, and index look-ups.
//!
//! These measure *host* performance of the real algorithms (the
//! discrete-event simulation charges virtual time separately).

use amada_cloud::{DynamoDb, KvStore, SimTime};
use amada_index::{extract, lookup_pattern, ExtractOptions, Strategy};
use amada_pattern::{evaluate_pattern_twig, naive_matches, parse_pattern};
use amada_xmark::{generate_document, CorpusConfig};
use amada_xml::{Document, StructuralId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn corpus_doc(bytes: usize) -> (String, String) {
    let cfg = CorpusConfig {
        num_documents: 50,
        target_doc_bytes: bytes,
        ..Default::default()
    };
    let d = generate_document(&cfg, 7); // a Standard-variant document
    (d.uri, d.xml)
}

fn bench_parser(c: &mut Criterion) {
    let mut g = c.benchmark_group("xml-parse");
    for kb in [2usize, 8, 32] {
        let (uri, xml) = corpus_doc(kb * 1024);
        g.throughput(Throughput::Bytes(xml.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(format!("{kb}KB")), &xml, |b, xml| {
            b.iter(|| Document::parse_str(uri.clone(), black_box(xml)).unwrap())
        });
    }
    g.finish();
}

fn bench_twig_join(c: &mut Criterion) {
    let (uri, xml) = corpus_doc(32 * 1024);
    let doc = Document::parse_str(uri, &xml).unwrap();
    let patterns = [
        ("linear", "//item[/name{val}]"),
        ("branching", "//item[/name{val}, /payment{val}, //mailbox[/mail[/from{val}]]]"),
        ("predicated", "//open_auction[/initial{val}, //bidder[/increase{\"10\"<val<=\"50\"}]]"),
    ];
    let mut g = c.benchmark_group("twig-join");
    for (name, text) in patterns {
        let p = parse_pattern(text).unwrap();
        g.bench_function(BenchmarkId::new("holistic", name), |b| {
            b.iter(|| evaluate_pattern_twig(black_box(&doc), black_box(&p)))
        });
        g.bench_function(BenchmarkId::new("naive", name), |b| {
            b.iter(|| naive_matches(black_box(&doc), black_box(&p)))
        });
    }
    g.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let (uri, xml) = corpus_doc(32 * 1024);
    let doc = Document::parse_str(uri, &xml).unwrap();
    let mut g = c.benchmark_group("index-extract");
    g.throughput(Throughput::Bytes(xml.len() as u64));
    for s in Strategy::ALL {
        g.bench_function(s.name(), |b| {
            b.iter(|| extract(black_box(&doc), s, ExtractOptions::default()))
        });
    }
    g.finish();
}

fn bench_id_codec(c: &mut Criterion) {
    let ids: Vec<StructuralId> =
        (1..=10_000).map(|i| StructuralId::new(i * 3, i * 2, (i % 12) + 1)).collect();
    let encoded = amada_index::codec::encode_ids(&ids);
    let mut g = c.benchmark_group("id-codec");
    g.throughput(Throughput::Elements(ids.len() as u64));
    g.bench_function("encode", |b| b.iter(|| amada_index::codec::encode_ids(black_box(&ids))));
    g.bench_function("decode", |b| {
        b.iter(|| amada_index::codec::decode_ids(black_box(&encoded)).unwrap())
    });
    g.finish();
}

fn bench_kv_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynamodb-host-ops");
    g.bench_function("batch_put-25", |b| {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        let mut i = 0u64;
        b.iter(|| {
            let items: Vec<amada_cloud::KvItem> = (0..25)
                .map(|k| amada_cloud::KvItem {
                    hash_key: format!("key{}", k % 7),
                    range_key: format!("r{i}-{k}"),
                    attrs: vec![("doc.xml".into(), vec![amada_cloud::KvValue::S("v".into())])],
                })
                .collect();
            i += 1;
            db.batch_put(SimTime::ZERO, "t", items).unwrap()
        })
    });
    g.bench_function("get-hot-key", |b| {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        for i in 0..200 {
            db.batch_put(
                SimTime::ZERO,
                "t",
                vec![amada_cloud::KvItem {
                    hash_key: "ename".into(),
                    range_key: format!("r{i}"),
                    attrs: vec![(format!("doc{i}.xml"), vec![amada_cloud::KvValue::S(String::new())])],
                }],
            )
            .unwrap();
        }
        b.iter(|| db.get(SimTime::ZERO, "t", black_box("ename")).unwrap().0.len())
    });
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    // A 50-document indexed corpus per strategy; measure look-up host time.
    let cfg = CorpusConfig { num_documents: 50, target_doc_bytes: 4096, ..Default::default() };
    let docs: Vec<Document> = (0..cfg.num_documents)
        .map(|i| {
            let d = generate_document(&cfg, i);
            Document::parse_str(d.uri, &d.xml).unwrap()
        })
        .collect();
    let pattern =
        parse_pattern("//item[/name{contains(gold)}, //mailbox[/mail[/from{val}]]]").unwrap();
    let mut g = c.benchmark_group("index-lookup");
    for s in Strategy::ALL {
        let mut store: Box<dyn KvStore> = Box::new(DynamoDb::default());
        amada_index::index_documents(store.as_mut(), &docs, s, ExtractOptions::default());
        g.bench_function(s.name(), |b| {
            b.iter(|| {
                lookup_pattern(
                    store.as_mut(),
                    SimTime::ZERO,
                    s,
                    ExtractOptions::default(),
                    black_box(&pattern),
                )
                .unwrap()
                .uris
                .len()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_parser,
    bench_twig_join,
    bench_extraction,
    bench_id_codec,
    bench_kv_store,
    bench_lookup
);
criterion_main!(benches);
