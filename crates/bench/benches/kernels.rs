//! Microbenchmarks of the warehouse's hot kernels: XML parsing, holistic
//! twig joins, index extraction per strategy, the structural-ID codec,
//! key-value store operations, and index look-ups.
//!
//! These measure *host* performance of the real algorithms (the
//! discrete-event simulation charges virtual time separately).
//!
//! The harness is self-contained (the build environment cannot fetch
//! criterion): each benchmark is auto-calibrated to run for at least
//! ~100 ms and reports the mean time per iteration. Run with
//!
//! ```text
//! cargo bench -p amada-bench
//! ```

use amada_cloud::{DynamoDb, KvStore, SimTime};
use amada_index::{extract, lookup_pattern, ExtractOptions, Strategy};
use amada_pattern::{evaluate_pattern_twig, naive_matches, parse_pattern};
use amada_xmark::{generate_document, CorpusConfig};
use amada_xml::{Document, StructuralId};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Runs `f` repeatedly for at least `MIN_RUN`, after a short warm-up, and
/// prints the mean wall time per iteration (plus optional throughput).
fn bench(group: &str, name: &str, bytes_per_iter: Option<u64>, mut f: impl FnMut()) {
    const WARMUP: Duration = Duration::from_millis(20);
    const MIN_RUN: Duration = Duration::from_millis(100);
    let start = Instant::now();
    let mut warm_iters: u64 = 0;
    while start.elapsed() < WARMUP {
        f();
        warm_iters += 1;
    }
    // Estimate a batch size from the warm-up rate, then time whole batches
    // until the total run is long enough.
    let per_iter = WARMUP.as_secs_f64() / warm_iters.max(1) as f64;
    let batch = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
    let mut iters: u64 = 0;
    let timed = Instant::now();
    while timed.elapsed() < MIN_RUN {
        for _ in 0..batch {
            f();
        }
        iters += batch;
    }
    let per = timed.elapsed().as_secs_f64() / iters as f64;
    let rate = match bytes_per_iter {
        Some(b) => format!("  {:8.1} MiB/s", b as f64 / per / (1024.0 * 1024.0)),
        None => String::new(),
    };
    println!("{group:<18} {name:<24} {:>12}/iter{rate}", fmt_time(per));
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn corpus_doc(bytes: usize) -> (String, String) {
    let cfg = CorpusConfig {
        num_documents: 50,
        target_doc_bytes: bytes,
        ..Default::default()
    };
    let d = generate_document(&cfg, 7); // a Standard-variant document
    (d.uri, d.xml)
}

fn bench_parser() {
    for kb in [2usize, 8, 32] {
        let (uri, xml) = corpus_doc(kb * 1024);
        bench(
            "xml-parse",
            &format!("{kb}KB"),
            Some(xml.len() as u64),
            || {
                black_box(Document::parse_str(uri.clone(), black_box(&xml)).unwrap());
            },
        );
    }
}

fn bench_twig_join() {
    let (uri, xml) = corpus_doc(32 * 1024);
    let doc = Document::parse_str(uri, &xml).unwrap();
    let patterns = [
        ("linear", "//item[/name{val}]"),
        (
            "branching",
            "//item[/name{val}, /payment{val}, //mailbox[/mail[/from{val}]]]",
        ),
        (
            "predicated",
            "//open_auction[/initial{val}, //bidder[/increase{\"10\"<val<=\"50\"}]]",
        ),
    ];
    for (name, text) in patterns {
        let p = parse_pattern(text).unwrap();
        bench("twig-join", &format!("holistic/{name}"), None, || {
            black_box(evaluate_pattern_twig(black_box(&doc), black_box(&p)));
        });
        bench("twig-join", &format!("naive/{name}"), None, || {
            black_box(naive_matches(black_box(&doc), black_box(&p)));
        });
    }
    // Stream-level advance at corpus-scale list lengths: the galloping
    // join vs. the element-at-a-time linear reference, on a selective
    // anchor (100 entries) over a dense descendant stream (~10k entries).
    // 98% of the descendant stream lies outside anchor subtrees — the
    // shape where skipping in binary-searched runs pays off.
    use amada_pattern::twig::{holistic_twig_join, holistic_twig_join_linear, TwigShape};
    let p = parse_pattern("//category[//text{val}]").unwrap();
    let shape = TwigShape::from_pattern(&p);
    let mut anchors = Vec::new();
    let mut texts = Vec::new();
    for pre in 0..10_000u32 {
        if pre % 100 == 0 {
            anchors.push((StructuralId::new(pre, pre + 2, 2), ()));
        } else {
            // Inside an anchor subtree only for the entry right after it.
            texts.push((StructuralId::new(pre, pre, 3), ()));
        }
    }
    let streams = vec![anchors, texts];
    bench("twig-join", "streams/gallop", None, || {
        black_box(holistic_twig_join(black_box(&shape), black_box(&streams)).len());
    });
    bench("twig-join", "streams/linear", None, || {
        black_box(holistic_twig_join_linear(black_box(&shape), black_box(&streams)).len());
    });
}

fn bench_extraction() {
    let (uri, xml) = corpus_doc(32 * 1024);
    let len = xml.len() as u64;
    let doc = Document::parse_str(uri, &xml).unwrap();
    for s in Strategy::ALL {
        bench("index-extract", s.name(), Some(len), || {
            black_box(extract(black_box(&doc), s, ExtractOptions::default()));
        });
    }
}

fn bench_id_codec() {
    use amada_index::codec::{decode_ids_blocked, encode_ids_blocked, BlockList};
    let ids: Vec<StructuralId> = (1..=10_000)
        .map(|i| StructuralId::new(i * 3, i * 2, (i % 12) + 1))
        .collect();
    let encoded = amada_index::codec::encode_ids(&ids);
    bench("id-codec", "encode-10k", None, || {
        black_box(amada_index::codec::encode_ids(black_box(&ids)));
    });
    bench("id-codec", "decode-10k", None, || {
        black_box(amada_index::codec::decode_ids(black_box(&encoded)).unwrap());
    });
    let blocked = encode_ids_blocked(&ids);
    bench("id-codec", "encode-blocked-10k", None, || {
        black_box(encode_ids_blocked(black_box(&ids)));
    });
    bench("id-codec", "decode-blocked-10k", None, || {
        black_box(decode_ids_blocked(black_box(&blocked)).unwrap());
    });
    // Selective access: build the lazy block view from the persisted
    // headers and decode only the blocks that 16 spread-out probes land
    // in, vs. the full materializing decode above.
    let targets: Vec<u32> = (1..=16u32).map(|k| k * 30_000 / 17).collect();
    bench("id-codec", "blocked-probe-16", None, || {
        let list = BlockList::from_blocked(black_box(&blocked)).unwrap();
        let mut cur = list.cursor();
        let mut hits = 0usize;
        for &t in &targets {
            cur.skip_to_pre(t);
            hits += cur.peek().is_some() as usize;
        }
        black_box(hits);
    });
}

fn bench_tokenize() {
    // All text content of a 32 KB document, tokenized the streaming way
    // (`for_each_word`, zero allocations) and the collecting way
    // (`tokenize`, one `String` per word) — the before/after of the
    // word-level hot path.
    let (uri, xml) = corpus_doc(32 * 1024);
    let doc = Document::parse_str(uri, &xml).unwrap();
    let texts: Vec<&str> = doc.all_nodes().filter_map(|n| doc.value(n)).collect();
    let bytes: u64 = texts.iter().map(|t| t.len() as u64).sum();
    bench("tokenize", "streaming", Some(bytes), || {
        let mut n = 0usize;
        for t in &texts {
            amada_xml::for_each_word(black_box(t), |w| n += w.len());
        }
        black_box(n);
    });
    bench("tokenize", "collecting", Some(bytes), || {
        for t in &texts {
            black_box(amada_xml::tokenize(black_box(t)));
        }
    });
}

fn bench_kv_store() {
    {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        let mut i = 0u64;
        bench("dynamodb-host-ops", "batch_put-25", None, || {
            let items: Vec<amada_cloud::KvItem> = (0..25)
                .map(|k| amada_cloud::KvItem {
                    hash_key: format!("key{}", k % 7),
                    range_key: format!("r{i}-{k}"),
                    attrs: vec![("doc.xml".into(), vec![amada_cloud::KvValue::S("v".into())])],
                })
                .collect();
            i += 1;
            black_box(db.batch_put(SimTime::ZERO, "t", items).unwrap());
        });
    }
    {
        let mut db = DynamoDb::default();
        db.ensure_table("t");
        for i in 0..200 {
            db.batch_put(
                SimTime::ZERO,
                "t",
                vec![amada_cloud::KvItem {
                    hash_key: "ename".into(),
                    range_key: format!("r{i}"),
                    attrs: vec![(
                        format!("doc{i}.xml"),
                        vec![amada_cloud::KvValue::S(String::new())],
                    )],
                }],
            )
            .unwrap();
        }
        bench("dynamodb-host-ops", "get-hot-key", None, || {
            black_box(
                db.get(SimTime::ZERO, "t", black_box("ename"))
                    .unwrap()
                    .0
                    .len(),
            );
        });
    }
}

fn bench_lookup() {
    // A 50-document indexed corpus per strategy; measure look-up host time.
    let cfg = CorpusConfig {
        num_documents: 50,
        target_doc_bytes: 4096,
        ..Default::default()
    };
    let docs: Vec<Document> = (0..cfg.num_documents)
        .map(|i| {
            let d = generate_document(&cfg, i);
            Document::parse_str(d.uri, &d.xml).unwrap()
        })
        .collect();
    let pattern =
        parse_pattern("//item[/name{contains(gold)}, //mailbox[/mail[/from{val}]]]").unwrap();
    for s in Strategy::ALL {
        let mut store: Box<dyn KvStore> = Box::new(DynamoDb::default());
        amada_index::index_documents(store.as_mut(), &docs, s, ExtractOptions::default());
        bench("index-lookup", s.name(), None, || {
            black_box(
                lookup_pattern(
                    store.as_mut(),
                    SimTime::ZERO,
                    s,
                    ExtractOptions::default(),
                    black_box(&pattern),
                )
                .unwrap()
                .uris
                .len(),
            );
        });
    }
}

fn main() {
    println!("{:<18} {:<24} {:>17}", "group", "benchmark", "mean");
    bench_parser();
    bench_tokenize();
    bench_twig_join();
    bench_extraction();
    bench_id_codec();
    bench_kv_store();
    bench_lookup();
}
