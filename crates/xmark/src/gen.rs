//! Deterministic XMark-style document generator reproducing the paper's
//! corpus construction (Section 8.1): XMark documents generated "using the
//! split option provided by the data generator", plus the paper's two
//! heterogeneity transforms.
//!
//! ## Split fragments
//!
//! XMark's split option cuts the single auction site into many documents,
//! each holding a *fragment* — a run of items, of people, of auctions…
//! Documents are therefore **specialized**: an `item` query only concerns
//! the item documents, which is exactly what makes label look-ups
//! selective in the paper's Table 5. The generator assigns each document a
//! [`DocKind`] from a fixed 20-slot rotation (7× items, 5× people, 4× open
//! auctions, 3× closed auctions, 1× mixed site), shifted per 20-block so
//! kinds decorrelate from the structural variants.
//!
//! ## Heterogeneity transforms (paper Section 8.1)
//!
//! * a fraction of documents have their **path structure altered** while
//!   preserving labels (wrapper elements break parent–child query paths →
//!   LU returns them, LUP filters them out);
//! * another fraction is made **"more" heterogeneous** by rendering
//!   compulsory children optional (labels and root-to-leaf paths still
//!   occur somewhere, but not co-occurring under one node → LUP returns
//!   them, the LUI/2LUPI twig join filters them out).
//!
//! ## Value clustering
//!
//! Real split fragments are internally homogeneous (neighbouring items
//! share flavour). Each document draws *themes* — a default payment, a
//! home country, a "gold" topic flag, a business bias — so value and word
//! predicates are selective at document granularity, like the paper's.
//!
//! ## Cross-document references
//!
//! Entity identifiers (`person-D-K`, `item-D-K`, `auction-D-K`) live in a
//! corpus-global space; references are drawn from documents of the kind
//! that actually defines the entity, so value-join queries genuinely join
//! tuples from different documents.
//!
//! Generation is deterministic: document `i` depends only on
//! `(config.seed, i)`, so corpus prefixes are stable (used by Figure 7).

use crate::words::{gen_name_plain, gen_text, push_words};
use amada_rng::StdRng;

/// Corpus generation parameters.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Master seed; all randomness derives from `(seed, doc index)`.
    pub seed: u64,
    /// Number of documents in the corpus.
    pub num_documents: usize,
    /// Approximate size of each document in bytes.
    pub target_doc_bytes: usize,
    /// Fraction of documents with altered path structure (variant B).
    pub restructured_fraction: f64,
    /// Fraction of documents with aggressively optional children
    /// (variant C).
    pub sparse_fraction: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0xA3ADA,
            num_documents: 200,
            target_doc_bytes: 2048,
            restructured_fraction: 0.15,
            sparse_fraction: 0.15,
        }
    }
}

/// Which structural variant a document uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocVariant {
    /// Plain XMark structure.
    Standard,
    /// Same labels, altered nesting (`info`, `terms`, `bidders`, `contact`
    /// wrappers).
    Restructured,
    /// Optional children dropped aggressively; co-occurrence broken.
    Sparse,
}

/// Which split fragment a document holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DocKind {
    /// A regions/items fragment.
    Items,
    /// A people fragment.
    People,
    /// An open-auctions fragment.
    OpenAuctions,
    /// A closed-auctions fragment.
    ClosedAuctions,
    /// A whole miniature site (all sections) — also the guaranteed target
    /// for every reference kind.
    Mixed,
}

impl DocKind {
    /// True when documents of this kind define `item-D-K` entities.
    pub fn has_items(self) -> bool {
        matches!(self, DocKind::Items | DocKind::Mixed)
    }

    /// True when documents of this kind define `person-D-K` entities.
    pub fn has_persons(self) -> bool {
        matches!(self, DocKind::People | DocKind::Mixed)
    }

    /// True when documents of this kind define `auction-D-K` entities.
    pub fn has_auctions(self) -> bool {
        matches!(self, DocKind::OpenAuctions | DocKind::Mixed)
    }
}

/// A generated document (not yet parsed).
#[derive(Debug, Clone)]
pub struct GeneratedDoc {
    /// Corpus-unique object name, e.g. `xmark00042.xml`.
    pub uri: String,
    /// The XML text.
    pub xml: String,
    /// Structural variant used.
    pub variant: DocVariant,
    /// Fragment kind.
    pub kind: DocKind,
}

/// Minimum entities per defining document; cross-document references only
/// target indices below these bounds so every reference resolves.
pub const MIN_PERSONS: usize = 2;
/// See [`MIN_PERSONS`].
pub const MIN_ITEMS: usize = 2;
/// See [`MIN_PERSONS`].
pub const MIN_AUCTIONS: usize = 1;

const REGIONS: &[&str] = &[
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
];
const COUNTRIES: &[&str] = &[
    "United-States",
    "France",
    "Germany",
    "Japan",
    "Brazil",
    "Kenya",
    "Australia",
];
const CITIES: &[&str] = &[
    "Paris", "Lyon", "Boston", "Tokyo", "Nairobi", "Sydney", "Recife",
];
const PAYMENTS: &[&str] = &["Cash", "Money-order", "Personal-check"];

/// The 20-slot kind rotation: 35 % items, 25 % people, 20 % open auctions,
/// 15 % closed auctions, 5 % mixed. Slot 6 is `Items` **by construction**:
/// workload query q1 targets `item-6-0`, and document 6 is also a
/// Standard variant (see [`variant_for`]).
const KIND_SLOTS: [DocKind; 20] = [
    DocKind::Items,
    DocKind::People,
    DocKind::OpenAuctions,
    DocKind::Items,
    DocKind::ClosedAuctions,
    DocKind::People,
    DocKind::Items,
    DocKind::OpenAuctions,
    DocKind::People,
    DocKind::Items,
    DocKind::Mixed,
    DocKind::OpenAuctions,
    DocKind::Items,
    DocKind::People,
    DocKind::ClosedAuctions,
    DocKind::Items,
    DocKind::OpenAuctions,
    DocKind::People,
    DocKind::Items,
    DocKind::ClosedAuctions,
];

/// Decides the kind of document `idx`. The slot rotates by one per
/// 20-block so kinds decorrelate from [`variant_for`]'s slots — except
/// document 6, pinned to `Items` for the q1 point query.
pub fn kind_for(idx: usize) -> DocKind {
    if idx == 6 {
        return DocKind::Items;
    }
    KIND_SLOTS[(idx + idx / 20) % 20]
}

/// Decides the variant of document `idx`. Variants are interleaved with a
/// period of 20 so every corpus prefix holds all three in the configured
/// proportions.
pub fn variant_for(cfg: &CorpusConfig, idx: usize) -> DocVariant {
    let slot = idx % 20;
    let restructured = (cfg.restructured_fraction * 20.0).round() as usize;
    let sparse = (cfg.sparse_fraction * 20.0).round() as usize;
    if slot < restructured {
        DocVariant::Restructured
    } else if slot < restructured + sparse {
        DocVariant::Sparse
    } else {
        DocVariant::Standard
    }
}

/// The URI document `idx` is stored under.
pub fn doc_uri(idx: usize) -> String {
    format!("xmark{idx:05}.xml")
}

/// Per-document value themes (the clustering that keeps predicates
/// selective at document granularity).
#[derive(Debug, Clone)]
struct Themes {
    /// Most items in this document pay this way.
    default_payment: &'static str,
    /// Whether this document's item names are about "gold".
    gold_topic: bool,
    /// Persons' home country.
    home_country: &'static str,
    /// Probability a person here runs a business.
    business_bias: f64,
    /// Probability an auction here is of type Regular.
    regular_bias: f64,
}

impl Themes {
    fn draw(rng: &mut StdRng) -> Themes {
        Themes {
            // ~20 % of item documents are Creditcard-dominant (q2's target).
            default_payment: if rng.gen_bool(0.2) {
                "Creditcard"
            } else {
                PAYMENTS[rng.gen_range(0..PAYMENTS.len())]
            },
            // ~15 % of item documents are about gold (q3 / q10's word).
            gold_topic: rng.gen_bool(0.15),
            home_country: COUNTRIES[rng.gen_range(0..COUNTRIES.len())],
            business_bias: if rng.gen_bool(0.2) { 0.6 } else { 0.1 },
            regular_bias: if rng.gen_bool(0.7) { 0.9 } else { 0.3 },
        }
    }
}

/// Generates document `idx` of the corpus described by `cfg`.
pub fn generate_document(cfg: &CorpusConfig, idx: usize) -> GeneratedDoc {
    let variant = variant_for(cfg, idx);
    let kind = kind_for(idx);
    let mut rng =
        StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9).wrapping_add(idx as u64));
    let themes = Themes::draw(&mut rng);
    let g = Gen {
        cfg: cfg.clone(),
        doc: idx,
        variant,
        themes,
    };
    let target = cfg.target_doc_bytes;

    let mut x = String::with_capacity(target + 1024);
    x.push_str("<site>");
    match kind {
        DocKind::Items => {
            let n = (target / 340).max(MIN_ITEMS);
            g.items_section(&mut rng, n, &mut x);
        }
        DocKind::People => {
            let n = (target / 420).max(MIN_PERSONS);
            g.people_section(&mut rng, n, &mut x);
        }
        DocKind::OpenAuctions => {
            let n = (target / 460).max(MIN_AUCTIONS);
            g.open_section(&mut rng, n, &mut x);
        }
        DocKind::ClosedAuctions => {
            let n = (target / 320).max(1);
            g.closed_section(&mut rng, n, &mut x);
        }
        DocKind::Mixed => {
            let blocks = (target / 1500).max(1);
            g.items_section(&mut rng, blocks.max(MIN_ITEMS), &mut x);
            g.categories_section(&mut rng, 2, &mut x);
            g.people_section(&mut rng, blocks.max(MIN_PERSONS), &mut x);
            g.open_section(&mut rng, blocks.max(MIN_AUCTIONS), &mut x);
            g.closed_section(&mut rng, blocks.max(1), &mut x);
        }
    }
    x.push_str("</site>");
    GeneratedDoc {
        uri: doc_uri(idx),
        xml: x,
        variant,
        kind,
    }
}

/// Generates the whole corpus, using all host cores.
///
/// Document `i` is a pure function of `(cfg.seed, i)` (its generator is
/// seeded per document), so the parallel result is byte-identical to
/// [`generate_corpus_seq`] — asserted by the `parallel_generation_*`
/// tests.
pub fn generate_corpus(cfg: &CorpusConfig) -> Vec<GeneratedDoc> {
    let indices: Vec<usize> = (0..cfg.num_documents).collect();
    amada_par::par_map(&indices, |_, &i| generate_document(cfg, i))
}

/// Single-threaded corpus generation; the reference the parallel path is
/// checked against.
pub fn generate_corpus_seq(cfg: &CorpusConfig) -> Vec<GeneratedDoc> {
    (0..cfg.num_documents)
        .map(|i| generate_document(cfg, i))
        .collect()
}

struct Gen {
    cfg: CorpusConfig,
    doc: usize,
    variant: DocVariant,
    themes: Themes,
}

impl Gen {
    fn sparse(&self) -> bool {
        self.variant == DocVariant::Sparse
    }

    fn restructured(&self) -> bool {
        self.variant == DocVariant::Restructured
    }

    // -- cross-document references ---------------------------------------
    //
    // Rejection-sample a document of the kind that defines the entity;
    // `Mixed` documents guarantee termination (one per 20-slot cycle, and
    // tiny corpora fall back to the pinned Items document / document 0).

    fn ref_doc(&self, rng: &mut StdRng, accepts: impl Fn(DocKind) -> bool) -> Option<usize> {
        let n = self.cfg.num_documents.max(1);
        for _ in 0..64 {
            let d = rng.gen_range(0..n);
            if accepts(kind_for(d)) {
                return Some(d);
            }
        }
        (0..n).find(|&d| accepts(kind_for(d)))
    }

    fn person_ref(&self, rng: &mut StdRng) -> String {
        let d = self.ref_doc(rng, DocKind::has_persons).unwrap_or(1);
        format!("person-{d}-{}", rng.gen_range(0..MIN_PERSONS))
    }

    fn item_ref(&self, rng: &mut StdRng) -> String {
        let d = self.ref_doc(rng, DocKind::has_items).unwrap_or(6);
        format!("item-{d}-{}", rng.gen_range(0..MIN_ITEMS))
    }

    fn auction_ref(&self, rng: &mut StdRng) -> String {
        let d = self.ref_doc(rng, DocKind::has_auctions).unwrap_or(2);
        format!("auction-{d}-{}", rng.gen_range(0..MIN_AUCTIONS))
    }

    fn date(&self, rng: &mut StdRng) -> String {
        format!(
            "{:02}/{:02}/{}",
            rng.gen_range(1..=12),
            rng.gen_range(1..=28),
            rng.gen_range(1998..=2003)
        )
    }

    fn full_name(&self, rng: &mut StdRng) -> String {
        let mut s = String::new();
        push_words(rng, 2, &mut s);
        s
    }

    /// An item name under the document's topic theme.
    fn item_name(&self, rng: &mut StdRng) -> String {
        let mut name = gen_name_plain(rng);
        let p_gold = if self.themes.gold_topic { 0.6 } else { 0.005 };
        if rng.gen_bool(p_gold) {
            name.push_str(" gold");
        }
        if rng.gen_bool(0.03) {
            name.push_str(" dragon");
        }
        if rng.gen_bool(0.25) {
            name.push_str(" shipment");
        }
        name
    }

    // -- sections ----------------------------------------------------------

    fn items_section(&self, rng: &mut StdRng, n: usize, x: &mut String) {
        x.push_str("<regions>");
        let region = REGIONS[rng.gen_range(0..REGIONS.len())];
        x.push('<');
        x.push_str(region);
        x.push('>');
        for k in 0..n {
            self.item(rng, k, x);
        }
        x.push_str("</");
        x.push_str(region);
        x.push('>');
        x.push_str("</regions>");
    }

    fn categories_section(&self, rng: &mut StdRng, n: usize, x: &mut String) {
        x.push_str("<categories>");
        for k in 0..n {
            x.push_str(&format!("<category id=\"cat-{k}\">"));
            x.push_str(&format!("<name>{}</name>", gen_name_plain(rng)));
            x.push_str(&format!(
                "<description><text>{}</text></description>",
                gen_text(rng, 40)
            ));
            x.push_str("</category>");
        }
        x.push_str("</categories>");
    }

    fn people_section(&self, rng: &mut StdRng, n: usize, x: &mut String) {
        x.push_str("<people>");
        for k in 0..n {
            self.person(rng, k, x);
        }
        x.push_str("</people>");
    }

    fn open_section(&self, rng: &mut StdRng, n: usize, x: &mut String) {
        x.push_str("<open_auctions>");
        for k in 0..n {
            self.open_auction(rng, k, x);
        }
        x.push_str("</open_auctions>");
    }

    fn closed_section(&self, rng: &mut StdRng, n: usize, x: &mut String) {
        x.push_str("<closed_auctions>");
        for _ in 0..n {
            self.closed_auction(rng, x);
        }
        x.push_str("</closed_auctions>");
    }

    // -- entities ----------------------------------------------------------

    fn item(&self, rng: &mut StdRng, k: usize, x: &mut String) {
        let id = format!("item-{}-{k}", self.doc);
        let country = COUNTRIES[rng.gen_range(0..COUNTRIES.len())];
        x.push_str(&format!("<item id=\"{id}\">"));
        x.push_str(&format!("<location>{country}</location>"));
        x.push_str(&format!("<quantity>{}</quantity>", rng.gen_range(1..=3)));
        // In sparse documents, items carry either a name or a mailbox
        // (rarely both): root-to-leaf paths exist document-wide while twig
        // co-occurrence under a single item is broken.
        let name = self.item_name(rng);
        let (emit_name, emit_mailbox) = if self.sparse() {
            if rng.gen_bool(0.5) {
                (true, rng.gen_bool(0.1))
            } else {
                (rng.gen_bool(0.1), true)
            }
        } else {
            (true, rng.gen_bool(0.8))
        };
        let payment = if rng.gen_bool(0.85) {
            self.themes.default_payment
        } else {
            PAYMENTS[rng.gen_range(0..PAYMENTS.len())]
        };
        let name_and_payment = |rng: &mut StdRng, x: &mut String| {
            if emit_name {
                x.push_str(&format!("<name>{name}</name>"));
            }
            if !self.sparse() || rng.gen_bool(0.5) {
                x.push_str(&format!("<payment>{payment}</payment>"));
            }
        };
        if self.restructured() {
            // Variant B: name/payment move under an <info> wrapper;
            // labels survive, the child path item/name does not.
            x.push_str("<info>");
            name_and_payment(rng, x);
            x.push_str("</info>");
        } else {
            name_and_payment(rng, x);
        }
        if !self.sparse() || rng.gen_bool(0.3) {
            x.push_str(&format!(
                "<description><text>{}</text></description>",
                gen_text(rng, 80)
            ));
        }
        x.push_str("<shipping>Will ship internationally</shipping>");
        x.push_str(&format!(
            "<incategory category=\"cat-{}\"/>",
            rng.gen_range(0..10)
        ));
        if emit_mailbox {
            x.push_str("<mailbox><mail>");
            x.push_str(&format!("<from>{}</from>", self.full_name(rng)));
            x.push_str(&format!("<to>{}</to>", self.full_name(rng)));
            x.push_str(&format!("<date>{}</date>", self.date(rng)));
            x.push_str(&format!("<text>{}</text>", gen_text(rng, 40)));
            x.push_str("</mail></mailbox>");
        }
        x.push_str("</item>");
    }

    fn person(&self, rng: &mut StdRng, k: usize, x: &mut String) {
        let id = format!("person-{}-{k}", self.doc);
        x.push_str(&format!("<person id=\"{id}\">"));
        let name = self.full_name(rng);
        if self.restructured() {
            x.push_str(&format!("<info><name>{name}</name></info>"));
        } else {
            x.push_str(&format!("<name>{name}</name>"));
        }
        x.push_str(&format!(
            "<emailaddress>mailto:{}@example.org</emailaddress>",
            name.replace(' ', ".")
        ));
        if rng.gen_bool(0.5) {
            x.push_str(&format!(
                "<phone>+{} ({}) {}</phone>",
                rng.gen_range(1..99),
                rng.gen_range(100..999),
                rng.gen_range(1000000..9999999)
            ));
        }
        let emit_address = if self.sparse() {
            rng.gen_bool(0.25)
        } else {
            rng.gen_bool(0.7)
        };
        if emit_address {
            let country = if rng.gen_bool(0.9) {
                self.themes.home_country
            } else {
                COUNTRIES[rng.gen_range(0..COUNTRIES.len())]
            };
            let addr = format!(
                "<street>{} {} St</street><city>{}</city><country>{}</country><zipcode>{}</zipcode>",
                rng.gen_range(1..99),
                crate::words::VOCABULARY[rng.gen_range(0..crate::words::VOCABULARY.len())],
                CITIES[rng.gen_range(0..CITIES.len())],
                country,
                rng.gen_range(10000..99999)
            );
            if self.restructured() {
                x.push_str(&format!("<contact><address>{addr}</address></contact>"));
            } else {
                x.push_str(&format!("<address>{addr}</address>"));
            }
        }
        if rng.gen_bool(0.4) {
            x.push_str(&format!(
                "<creditcard>{} {} {} {}</creditcard>",
                rng.gen_range(1000..9999),
                rng.gen_range(1000..9999),
                rng.gen_range(1000..9999),
                rng.gen_range(1000..9999)
            ));
        }
        let emit_profile = if self.sparse() {
            rng.gen_bool(0.3)
        } else {
            rng.gen_bool(0.75)
        };
        if emit_profile {
            x.push_str(&format!(
                "<profile income=\"{}\">",
                rng.gen_range(20000..100000)
            ));
            x.push_str(&format!(
                "<interest category=\"cat-{}\"/>",
                rng.gen_range(0..10)
            ));
            if rng.gen_bool(0.5) {
                x.push_str("<education>Graduate School</education>");
            }
            x.push_str(&format!(
                "<business>{}</business>",
                if rng.gen_bool(self.themes.business_bias) {
                    "Yes"
                } else {
                    "No"
                }
            ));
            if rng.gen_bool(0.7) {
                x.push_str(&format!("<age>{}</age>", rng.gen_range(18..80)));
            }
            x.push_str("</profile>");
        }
        if rng.gen_bool(0.5) {
            x.push_str("<watches>");
            for _ in 0..rng.gen_range(1..=2) {
                x.push_str(&format!(
                    "<watch open_auction=\"{}\"/>",
                    self.auction_ref(rng)
                ));
            }
            x.push_str("</watches>");
        }
        x.push_str("</person>");
    }

    fn open_auction(&self, rng: &mut StdRng, k: usize, x: &mut String) {
        let id = format!("auction-{}-{k}", self.doc);
        x.push_str(&format!("<open_auction id=\"{id}\">"));
        let initial: f64 = rng.gen_range(5.0..100.0);
        let terms = format!(
            "<initial>{initial:.2}</initial>{}<current>{:.2}</current>",
            if rng.gen_bool(0.6) {
                format!("<reserve>{:.2}</reserve>", initial * 1.5)
            } else {
                String::new()
            },
            initial + rng.gen_range(0.0..200.0),
        );
        if self.restructured() {
            // Variant B: pricing fields move under <terms>.
            x.push_str(&format!("<terms>{terms}</terms>"));
        } else {
            x.push_str(&terms);
        }
        let n_bidders = if self.sparse() && rng.gen_bool(0.6) {
            0
        } else {
            rng.gen_range(0..=3)
        };
        let mut bidders = String::new();
        for _ in 0..n_bidders {
            bidders.push_str(&format!(
                "<bidder><date>{}</date><time>{:02}:{:02}:{:02}</time><personref person=\"{}\"/><increase>{:.2}</increase></bidder>",
                self.date(rng),
                rng.gen_range(0..24),
                rng.gen_range(0..60),
                rng.gen_range(0..60),
                self.person_ref(rng),
                rng.gen_range(1.5..60.0)
            ));
        }
        if self.restructured() && !bidders.is_empty() {
            x.push_str(&format!("<bidders>{bidders}</bidders>"));
        } else {
            x.push_str(&bidders);
        }
        x.push_str(&format!("<itemref item=\"{}\"/>", self.item_ref(rng)));
        x.push_str(&format!("<seller person=\"{}\"/>", self.person_ref(rng)));
        if !self.sparse() || rng.gen_bool(0.3) {
            x.push_str(&format!(
                "<annotation><author person=\"{}\"/><description><text>{}</text></description></annotation>",
                self.person_ref(rng),
                gen_text(rng, 60)
            ));
        }
        x.push_str("<quantity>1</quantity>");
        x.push_str(&format!(
            "<type>{}</type>",
            if rng.gen_bool(self.themes.regular_bias) {
                "Regular"
            } else {
                "Featured"
            }
        ));
        x.push_str(&format!(
            "<interval><start>{}</start><end>{}</end></interval>",
            self.date(rng),
            self.date(rng)
        ));
        x.push_str("</open_auction>");
    }

    fn closed_auction(&self, rng: &mut StdRng, x: &mut String) {
        x.push_str("<closed_auction>");
        x.push_str(&format!("<seller person=\"{}\"/>", self.person_ref(rng)));
        x.push_str(&format!("<buyer person=\"{}\"/>", self.person_ref(rng)));
        x.push_str(&format!("<itemref item=\"{}\"/>", self.item_ref(rng)));
        x.push_str(&format!("<price>{:.2}</price>", rng.gen_range(5.0..500.0)));
        x.push_str(&format!("<date>{}</date>", self.date(rng)));
        x.push_str("<quantity>1</quantity>");
        x.push_str(&format!(
            "<type>{}</type>",
            if rng.gen_bool(self.themes.regular_bias) {
                "Regular"
            } else {
                "Featured"
            }
        ));
        if !self.sparse() || rng.gen_bool(0.3) {
            x.push_str(&format!(
                "<annotation><author person=\"{}\"/><description><text>{}</text></description></annotation>",
                self.person_ref(rng),
                gen_text(rng, 40)
            ));
        }
        x.push_str("</closed_auction>");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amada_xml::Document;
    use std::collections::HashMap;

    fn small_cfg() -> CorpusConfig {
        CorpusConfig {
            num_documents: 40,
            target_doc_bytes: 1500,
            ..Default::default()
        }
    }

    #[test]
    fn documents_parse() {
        let cfg = small_cfg();
        for i in 0..cfg.num_documents {
            let d = generate_document(&cfg, i);
            let parsed = Document::parse_str(&d.uri, &d.xml)
                .unwrap_or_else(|e| panic!("doc {i} failed to parse: {e}\n{}", d.xml));
            assert_eq!(parsed.name(parsed.root()), Some("site"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = small_cfg();
        let a = generate_document(&cfg, 7);
        let b = generate_document(&cfg, 7);
        assert_eq!(a.xml, b.xml);
    }

    #[test]
    fn parallel_generation_is_byte_identical_to_sequential() {
        let cfg = CorpusConfig {
            num_documents: 120,
            ..small_cfg()
        };
        let seq = generate_corpus_seq(&cfg);
        let par = generate_corpus(&cfg);
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.uri, p.uri);
            assert_eq!(s.xml, p.xml, "{} diverged under parallel generation", s.uri);
            assert_eq!(s.variant, p.variant);
            assert_eq!(s.kind, p.kind);
        }
    }

    #[test]
    fn prefixes_are_stable_under_corpus_growth() {
        let cfg = small_cfg();
        let all = generate_corpus(&cfg);
        let d5 = generate_document(&cfg, 5);
        assert_eq!(all[5].xml, d5.xml);
    }

    #[test]
    fn variants_appear_in_expected_proportions() {
        let cfg = CorpusConfig {
            num_documents: 200,
            ..small_cfg()
        };
        let mut counts = [0usize; 3];
        for i in 0..cfg.num_documents {
            match variant_for(&cfg, i) {
                DocVariant::Restructured => counts[0] += 1,
                DocVariant::Sparse => counts[1] += 1,
                DocVariant::Standard => counts[2] += 1,
            }
        }
        assert_eq!(counts[0], 30); // 15 % of 200
        assert_eq!(counts[1], 30);
        assert_eq!(counts[2], 140);
    }

    #[test]
    fn kinds_follow_split_proportions() {
        let mut counts: HashMap<DocKind, usize> = HashMap::new();
        for i in 0..400 {
            *counts.entry(kind_for(i)).or_default() += 1;
        }
        // 35 / 25 / 20 / 15 / 5 % (±1 slot for the pinned document 6).
        assert!((135..=145).contains(&counts[&DocKind::Items]), "{counts:?}");
        assert!((95..=105).contains(&counts[&DocKind::People]), "{counts:?}");
        assert!(
            (75..=85).contains(&counts[&DocKind::OpenAuctions]),
            "{counts:?}"
        );
        assert!(
            (55..=65).contains(&counts[&DocKind::ClosedAuctions]),
            "{counts:?}"
        );
        assert!((15..=25).contains(&counts[&DocKind::Mixed]), "{counts:?}");
        // Document 6 is pinned for q1.
        assert_eq!(kind_for(6), DocKind::Items);
        assert_eq!(variant_for(&small_cfg(), 6), DocVariant::Standard);
    }

    #[test]
    fn kinds_specialize_documents() {
        let cfg = small_cfg();
        for i in 0..cfg.num_documents {
            let d = generate_document(&cfg, i);
            let doc = Document::parse_str(&d.uri, &d.xml).unwrap();
            let has = |l: &str| !doc.elements_named(l).is_empty();
            match d.kind {
                DocKind::Items => {
                    assert!(
                        has("item") && !has("person") && !has("open_auction"),
                        "doc {i}"
                    );
                }
                DocKind::People => {
                    assert!(has("person") && !has("item"), "doc {i}");
                }
                DocKind::OpenAuctions => {
                    assert!(has("open_auction") && !has("person"), "doc {i}");
                }
                DocKind::ClosedAuctions => {
                    assert!(has("closed_auction") && !has("open_auction"), "doc {i}");
                }
                DocKind::Mixed => {
                    assert!(
                        has("item") && has("person") && has("open_auction"),
                        "doc {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn sizes_are_near_target() {
        let cfg = CorpusConfig {
            target_doc_bytes: 4096,
            ..small_cfg()
        };
        for i in 0..10 {
            let d = generate_document(&cfg, i);
            assert!(d.xml.len() > 1500, "doc {i} too small: {}", d.xml.len());
            assert!(d.xml.len() < 16384, "doc {i} too large: {}", d.xml.len());
        }
    }

    #[test]
    fn restructured_docs_lack_child_name_under_item() {
        let cfg = small_cfg();
        let mut seen_restructured = false;
        for i in 0..cfg.num_documents {
            let d = generate_document(&cfg, i);
            if d.variant != DocVariant::Restructured {
                continue;
            }
            seen_restructured = true;
            let doc = Document::parse_str(&d.uri, &d.xml).unwrap();
            for &item in doc.elements_named("item") {
                for c in doc.element_children(item) {
                    assert_ne!(
                        doc.name(c),
                        Some("name"),
                        "restructured item has child name"
                    );
                }
            }
        }
        assert!(seen_restructured);
    }

    #[test]
    fn references_resolve_to_defining_documents() {
        let cfg = small_cfg();
        for i in 0..cfg.num_documents {
            let d = generate_document(&cfg, i);
            let doc = Document::parse_str(&d.uri, &d.xml).unwrap();
            for (label, attr, accepts) in [
                (
                    "buyer",
                    "person",
                    DocKind::has_persons as fn(DocKind) -> bool,
                ),
                ("seller", "person", DocKind::has_persons),
                ("itemref", "item", DocKind::has_items),
                ("watch", "open_auction", DocKind::has_auctions),
            ] {
                for &n in doc.elements_named(label) {
                    let r = doc.attribute(n, attr).unwrap();
                    let parts: Vec<&str> = r.rsplitn(3, '-').collect();
                    let doc_idx: usize = parts[1].parse().unwrap();
                    assert!(doc_idx < cfg.num_documents, "{r}");
                    assert!(
                        accepts(kind_for(doc_idx)),
                        "{label} ref {r} to non-defining doc"
                    );
                }
            }
        }
    }

    #[test]
    fn gold_topic_is_document_clustered() {
        let cfg = CorpusConfig {
            num_documents: 300,
            target_doc_bytes: 2048,
            ..Default::default()
        };
        let mut gold_docs = 0usize;
        let mut item_docs = 0usize;
        for i in 0..cfg.num_documents {
            let d = generate_document(&cfg, i);
            if !d.kind.has_items() {
                continue;
            }
            item_docs += 1;
            if d.xml.contains(" gold") {
                gold_docs += 1;
            }
        }
        let rate = gold_docs as f64 / item_docs as f64;
        assert!((0.05..0.40).contains(&rate), "gold doc rate {rate}");
    }
}
