//! The experimental query workload (paper Section 8.2).
//!
//! Ten queries over the XMark corpus, averaging ~10 pattern nodes, the
//! last three featuring value joins — mirroring the paper's workload
//! characteristics:
//!
//! | query | character |
//! |-------|-----------|
//! | q1 | point query: one item by `@id` equality (very selective) |
//! | q2 | equality + `cont`: large results |
//! | q3 | full-text `contains` + deep branch |
//! | q4 | range predicate + equality (two-step range evaluation) |
//! | q5 | branching twig over auctions |
//! | q6 | person profile twig with equality |
//! | q7 | address twig with equality (child-heavy) |
//! | q8 | value join: closed auctions ⋈ buyers |
//! | q9 | value join: watchers ⋈ open auctions |
//! | q10 | value join with selective `contains`: auctions ⋈ items |

use amada_pattern::{parse_query, Query};

/// `(name, query text)` for the ten workload queries.
pub fn workload_texts() -> Vec<(&'static str, &'static str)> {
    vec![
        // Document 6 is always a Standard-variant document (see
        // `gen::variant_for`), so the target item reliably has a child
        // `name`; corpora must have at least 7 documents.
        (
            "q1",
            "//item[/@id{=\"item-6-0\"}, /name{val}]",
        ),
        (
            "q2",
            "//item[/description{cont}, /payment{=\"Creditcard\"}]",
        ),
        (
            "q3",
            "//item[/name{contains(gold)}, //mailbox[/mail[/from{val}]]]",
        ),
        (
            "q4",
            "//open_auction[/initial{val}, //bidder[/increase{\"10\"<val<=\"50\"}], /type{=\"Regular\"}]",
        ),
        (
            "q5",
            "//open_auction[//annotation[//description[/text{cont}]], /reserve{val}]",
        ),
        (
            "q6",
            "//person[/name{val}, //profile[/business{=\"Yes\"}, /age{val}]]",
        ),
        (
            "q7",
            "//person[/name{val}, //address[/city{val}, /country{=\"United-States\"}]]",
        ),
        (
            "q8",
            "//closed_auction[/buyer[/@person{val as $p}], /price{val}]; \
             //person[/@id{val as $p}, /name{val}]",
        ),
        (
            "q9",
            "//person[/name{val}, //watches[/watch[/@open_auction{val as $a}]]]; \
             //open_auction[/@id{val as $a}, /current{val}]",
        ),
        (
            "q10",
            "//closed_auction[/itemref[/@item{val as $i}], /price{val}]; \
             //item[/@id{val as $i}, /name{contains(gold)}]",
        ),
    ]
}

/// Parses the whole workload, attaching query names.
pub fn workload() -> Vec<Query> {
    workload_texts()
        .into_iter()
        .map(|(name, text)| {
            let mut q = parse_query(text).unwrap_or_else(|e| panic!("workload {name}: {e}"));
            q.name = Some(name.to_string());
            q
        })
        .collect()
}

/// Looks a workload query up by name (`"q1"` … `"q10"`).
pub fn workload_query(name: &str) -> Option<Query> {
    workload()
        .into_iter()
        .find(|q| q.name.as_deref() == Some(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_corpus, CorpusConfig};
    use amada_pattern::evaluate_query_on_documents;
    use amada_xml::Document;

    #[test]
    fn all_queries_parse() {
        let qs = workload();
        assert_eq!(qs.len(), 10);
        // The last three feature value joins, the rest are single patterns.
        for q in &qs[..7] {
            assert!(q.is_single_pattern(), "{:?}", q.name);
        }
        for q in &qs[7..] {
            assert_eq!(q.patterns.len(), 2, "{:?}", q.name);
            assert_eq!(q.join_groups().len(), 1);
        }
    }

    #[test]
    fn workload_has_nontrivial_results_on_default_corpus() {
        let cfg = CorpusConfig {
            num_documents: 60,
            target_doc_bytes: 2048,
            ..Default::default()
        };
        let docs: Vec<Document> = generate_corpus(&cfg)
            .iter()
            .map(|d| Document::parse_str(&d.uri, &d.xml).unwrap())
            .collect();
        let refs: Vec<&Document> = docs.iter().collect();
        let mut nonempty = 0;
        for q in workload() {
            let (res, _) = evaluate_query_on_documents(&q, refs.iter().copied());
            if !res.is_empty() {
                nonempty += 1;
            }
        }
        // Every query should produce results at this scale (q1 targets
        // item-0-0 which always exists; joins target guaranteed id ranges).
        assert_eq!(nonempty, 10);
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload_query("q4").is_some());
        assert!(workload_query("q11").is_none());
    }
}
