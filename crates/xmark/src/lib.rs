//! # amada-xmark
//!
//! Deterministic synthetic corpora for the warehouse experiments:
//!
//! * [`gen`] — an XMark-style auction-site document generator with the
//!   paper's two heterogeneity transforms (restructured paths; sparse
//!   optional children) and corpus-global entity identifiers so that value
//!   joins span documents;
//! * [`museum`] — the paintings/museums running example of the paper's
//!   Figures 2–3;
//! * [`workload`] — the ten-query experimental workload of Section 8.2;
//! * [`words`] — the fixed vocabulary and marker words with controlled
//!   document frequencies.
//!
//! Everything is seeded and reproducible: document `i` depends only on
//! `(seed, i)`, so corpus prefixes are stable — a property the Figure 7
//! scaling experiment relies on.

pub mod gen;
pub mod museum;
pub mod words;
pub mod workload;

pub use gen::{
    doc_uri, generate_corpus, generate_corpus_seq, generate_document, kind_for, variant_for,
    CorpusConfig, DocKind, DocVariant, GeneratedDoc,
};
pub use museum::{delacroix_xml, figure2_queries, generate_gallery, manet_xml, GalleryDoc};
pub use workload::{workload, workload_query, workload_texts};
