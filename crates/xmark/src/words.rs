//! Vocabulary and text generation for the synthetic corpus.
//!
//! XMark generates its prose from a fixed Shakespeare-derived vocabulary;
//! we embed a similar fixed word list plus a handful of *marker words*
//! whose document frequency the generator controls precisely, so that
//! `contains(...)` queries have known, reproducible selectivities.

use amada_rng::StdRng;

/// The base vocabulary (uniformly sampled filler words).
pub const VOCABULARY: &[&str] = &[
    "against", "alarum", "ancient", "appear", "arms", "attend", "banish", "battle", "bear",
    "beauty", "bed", "blood", "bosom", "breath", "brother", "business", "call", "cause", "charge",
    "cheek", "command", "content", "crown", "daughter", "dead", "death", "deed", "desire", "devil",
    "door", "doubt", "dream", "duke", "earth", "enemy", "england", "eye", "face", "fair", "faith",
    "father", "fear", "field", "fire", "flesh", "follow", "fool", "fortune", "france", "friend",
    "gentle", "give", "grace", "grave", "great", "grief", "hand", "happy", "hard", "hast", "hath",
    "head", "hear", "heart", "heaven", "hold", "honour", "hope", "horse", "hour", "house",
    "husband", "keep", "king", "kiss", "knight", "lady", "land", "leave", "letter", "light",
    "live", "london", "look", "lord", "love", "madam", "majesty", "marry", "master", "mean",
    "mind", "mother", "mouth", "music", "name", "nature", "night", "noble", "nothing", "offer",
    "part", "peace", "person", "play", "pleasure", "poor", "power", "praise", "pray", "prince",
    "promise", "proud", "queen", "quick", "reason", "rest", "rich", "right", "royal", "sea",
    "send", "service", "shame", "sleep", "son", "soul", "speak", "spirit", "stand", "state",
    "stay", "strange", "strong", "sweet", "sword", "tear", "tell", "thank", "thought", "time",
    "tongue", "touch", "town", "true", "truth", "turn", "virtue", "voice", "war", "watch", "water",
    "wife", "wind", "wisdom", "wish", "word", "world", "worth", "youth",
];

/// Marker words with controlled document frequency, used by `contains()`
/// workload queries. `(word, per-mille probability that a given item name
/// mentions it)`.
pub const MARKERS: &[(&str, u32)] = &[
    ("gold", 120),     // moderately selective (q3/q10 style)
    ("dragon", 25),    // rare
    ("shipment", 400), // common
];

/// Draws `n` filler words into `out`, space-separated.
pub fn push_words(rng: &mut StdRng, n: usize, out: &mut String) {
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(VOCABULARY[rng.gen_range(0..VOCABULARY.len())]);
    }
}

/// Generates a plain name: a few filler words, no marker words (the
/// corpus generator inserts markers according to per-document themes, so
/// `contains` predicates stay selective at document granularity).
pub fn gen_name_plain(rng: &mut StdRng) -> String {
    let mut s = String::new();
    let n = rng.gen_range(2..5usize);
    push_words(rng, n, &mut s);
    s
}

/// Generates an item/auction name with each marker word independently
/// included at its configured per-mille rate (unclustered; used by the
/// gallery example corpus and tests).
pub fn gen_name(rng: &mut StdRng) -> String {
    let mut s = gen_name_plain(rng);
    for &(word, permille) in MARKERS {
        if rng.gen_range(0..1000u32) < permille {
            s.push(' ');
            s.push_str(word);
        }
    }
    s
}

/// Generates a sentence-ish run of prose of roughly `target_len` bytes.
pub fn gen_text(rng: &mut StdRng, target_len: usize) -> String {
    let mut s = String::with_capacity(target_len + 16);
    while s.len() < target_len {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(VOCABULARY[rng.gen_range(0..VOCABULARY.len())]);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_text_reaches_target_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = gen_text(&mut rng, 100);
        assert!(t.len() >= 100);
        assert!(t.len() < 130);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen_name(&mut StdRng::seed_from_u64(7));
        let b = gen_name(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn marker_frequencies_are_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 5000;
        let mut gold = 0;
        for _ in 0..n {
            if gen_name(&mut rng).contains("gold") {
                gold += 1;
            }
        }
        let rate = gold as f64 / n as f64;
        assert!((0.08..0.16).contains(&rate), "gold rate {rate}");
    }

    #[test]
    fn vocabulary_is_lowercase_single_words() {
        for w in VOCABULARY {
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w}");
        }
    }
}
