//! The paper's running example corpus: paintings and museums (Figures 2–3).
//!
//! [`delacroix_xml`] and [`manet_xml`] are the exact two documents of the
//! paper's Figure 3; [`generate_gallery`] scales the same schema up into a
//! small corpus of painting and museum documents suitable for the example
//! binaries and for tests of the paper's five sample queries (Figure 2).

use amada_rng::StdRng;

/// `delacroix.xml` from the paper's Figure 3.
pub fn delacroix_xml() -> &'static str {
    "<painting id=\"1854-1\"><name>The Lion Hunt</name>\
     <painter><name><first>Eugene</first><last>Delacroix</last></name></painter></painting>"
}

/// `manet.xml` from the paper's Figure 3.
pub fn manet_xml() -> &'static str {
    "<painting id=\"1863-1\"><name>Olympia</name>\
     <painter><name><first>Edouard</first><last>Manet</last></name></painter></painting>"
}

const PAINTERS: &[(&str, &str)] = &[
    ("Eugene", "Delacroix"),
    ("Edouard", "Manet"),
    ("Claude", "Monet"),
    ("Berthe", "Morisot"),
    ("Gustave", "Courbet"),
    ("Camille", "Pissarro"),
];

const SUBJECTS: &[&str] = &[
    "Lion",
    "Hunt",
    "Olympia",
    "Garden",
    "Harbor",
    "Cathedral",
    "Storm",
    "Dancer",
];

const MUSEUMS: &[&str] = &["Louvre", "Orsay", "Prado", "Uffizi", "Hermitage"];

/// A painting or museum document.
#[derive(Debug, Clone)]
pub struct GalleryDoc {
    /// Object name, e.g. `painting-0007.xml` or `museum-02.xml`.
    pub uri: String,
    /// XML text.
    pub xml: String,
}

/// Generates `n_paintings` painting documents plus `n_museums` museum
/// documents referencing them by `@id` (the shape joined by the paper's
/// q5). Deterministic in `seed`.
pub fn generate_gallery(seed: u64, n_paintings: usize, n_museums: usize) -> Vec<GalleryDoc> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut docs = Vec::with_capacity(n_paintings + n_museums);
    let mut ids = Vec::with_capacity(n_paintings);
    for i in 0..n_paintings {
        let (first, last) = PAINTERS[rng.gen_range(0..PAINTERS.len())];
        let year = rng.gen_range(1830..1900);
        let id = format!("{year}-{i}");
        let subject = SUBJECTS[rng.gen_range(0..SUBJECTS.len())];
        let subject2 = SUBJECTS[rng.gen_range(0..SUBJECTS.len())];
        let xml = format!(
            "<painting id=\"{id}\"><name>The {subject} {subject2}</name>\
             <year>{year}</year>\
             <description>A study of the {subject} painted by {first} {last}</description>\
             <painter><name><first>{first}</first><last>{last}</last></name></painter></painting>"
        );
        ids.push(id.clone());
        docs.push(GalleryDoc {
            uri: format!("painting-{i:04}.xml"),
            xml,
        });
    }
    for m in 0..n_museums {
        let name = MUSEUMS[m % MUSEUMS.len()];
        let mut xml = format!("<museum><name>{name}</name>");
        let count = rng.gen_range(2..=5usize).min(ids.len());
        for _ in 0..count {
            let id = &ids[rng.gen_range(0..ids.len())];
            xml.push_str(&format!("<painting id=\"{id}\"/>"));
        }
        xml.push_str("</museum>");
        docs.push(GalleryDoc {
            uri: format!("museum-{m:02}.xml"),
            xml,
        });
    }
    docs
}

/// The paper's five example queries (Figure 2), in this crate's textual
/// syntax, as `(name, query text)` pairs.
pub fn figure2_queries() -> Vec<(&'static str, &'static str)> {
    vec![
        // q1: (painting name, painter name) for each painting.
        ("q1", "//painting[/name{val}, //painter[/name{val}]]"),
        // q2: descriptions of paintings from 1854.
        ("q2", "//painting[//description{cont}, /year{=1854}]"),
        // q3: last name of painters of paintings whose name contains "Lion".
        (
            "q3",
            "//painting[/name{contains(Lion)}, //painter[/name[/last{val}]]]",
        ),
        // q4: names of paintings by Manet created in (1854, 1865].
        (
            "q4",
            "//painting[/name{val}, //painter[/name[/last{=Manet}]], /year{1854<val<=1865}]",
        ),
        // q5: names of museums exposing paintings by Delacroix.
        (
            "q5",
            "//museum[/name{val}, //painting[/@id{val as $p}]]; \
             //painting[/@id{val as $p}, //painter[/name[/last{=Delacroix}]]]",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use amada_pattern::{evaluate_query_on_documents, parse_query};
    use amada_xml::Document;

    #[test]
    fn figure3_documents_parse_to_paper_ids() {
        let d = Document::parse_str("delacroix.xml", delacroix_xml()).unwrap();
        assert_eq!(d.sid(d.elements_named("name")[0]).pre, 3);
        let m = Document::parse_str("manet.xml", manet_xml()).unwrap();
        assert_eq!(m.attribute(m.root(), "id"), Some("1863-1"));
    }

    #[test]
    fn gallery_parses_and_queries_run() {
        let docs = generate_gallery(1, 30, 3);
        let parsed: Vec<Document> = docs
            .iter()
            .map(|d| Document::parse_str(&d.uri, &d.xml).unwrap())
            .collect();
        for (name, text) in figure2_queries() {
            let q = parse_query(text).unwrap_or_else(|e| panic!("{name}: {e}"));
            let refs: Vec<&Document> = parsed.iter().collect();
            let (res, _) = evaluate_query_on_documents(&q, refs.iter().copied());
            // q1 matches every painting; others may be empty depending on
            // the draw, but must at least evaluate.
            if name == "q1" {
                assert_eq!(res.len(), 30);
            }
        }
    }

    #[test]
    fn q5_join_produces_museum_names() {
        let docs = generate_gallery(2, 40, 5);
        let parsed: Vec<Document> = docs
            .iter()
            .map(|d| Document::parse_str(&d.uri, &d.xml).unwrap())
            .collect();
        let q = parse_query(figure2_queries()[4].1).unwrap();
        let refs: Vec<&Document> = parsed.iter().collect();
        let (res, _) = evaluate_query_on_documents(&q, refs.iter().copied());
        // With 40 paintings over 6 painters and 5 museums × up-to-5
        // paintings each, at least one museum exposes a Delacroix.
        assert!(!res.is_empty());
        for t in &res {
            assert!(MUSEUMS.contains(&t.columns[0].as_str()));
        }
    }
}
